(* Tests for the network substrate: xrpc:// URIs, the deterministic
   simulated network (latency/bandwidth/parallel dispatch), and the real
   HTTP transport over loopback sockets. *)

module Uri = Xrpc_net.Xrpc_uri
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Http = Xrpc_net.Http

let check = Alcotest.check
let string_ = Alcotest.string
let int_ = Alcotest.int
let bool_ = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* URIs                                                                *)
(* ------------------------------------------------------------------ *)

let test_uri_full () =
  let u = Uri.parse "xrpc://y.example.org:8080/some/path.xml" in
  check string_ "scheme" "xrpc" u.Uri.scheme;
  check string_ "host" "y.example.org" u.Uri.host;
  check (Alcotest.option int_) "port" (Some 8080) u.Uri.port;
  check string_ "path" "some/path.xml" u.Uri.path;
  check string_ "roundtrip" "xrpc://y.example.org:8080/some/path.xml"
    (Uri.to_string u)

let test_uri_minimal () =
  let u = Uri.parse "xrpc://y.example.org" in
  check (Alcotest.option int_) "no port" None u.Uri.port;
  check string_ "no path" "" u.Uri.path;
  check string_ "peer key" "y.example.org" (Uri.peer_key u)

let test_uri_bare_host () =
  (* §5 uses execute at {"B"} — bare names are peers too *)
  let u = Uri.parse "B" in
  check string_ "host" "B" u.Uri.host;
  check string_ "default scheme" "xrpc" u.Uri.scheme

let test_uri_bad () =
  Alcotest.check_raises "empty host" (Uri.Bad_uri "xrpc://") (fun () ->
      ignore (Uri.parse "xrpc://"))

(* ------------------------------------------------------------------ *)
(* Simnet                                                              *)
(* ------------------------------------------------------------------ *)

let config latency bw =
  { Simnet.latency_ms = latency; bandwidth_bytes_per_ms = bw; charge_cpu = false }

let test_simnet_latency_accounting () =
  let net = Simnet.create ~config:(config 1.0 Float.infinity) () in
  Simnet.register net "xrpc://a" (fun body -> body);
  let r = Simnet.send net ~dest:"xrpc://a" "hello" in
  check string_ "echo" "hello" r;
  (* one round trip = 2 x latency *)
  check (Alcotest.float 0.0001) "2ms" 2.0 net.Simnet.clock_ms;
  check int_ "2 messages" 2 net.Simnet.stats.Simnet.messages

let test_simnet_bandwidth_accounting () =
  let net = Simnet.create ~config:(config 0. 100.) () in
  Simnet.register net "xrpc://a" (fun _ -> String.make 400 'x');
  ignore (Simnet.send net ~dest:"xrpc://a" (String.make 200 'y'));
  (* 200/100 + 400/100 = 6 ms *)
  check (Alcotest.float 0.0001) "transfer cost" 6.0 net.Simnet.clock_ms;
  check int_ "bytes sent" 200 net.Simnet.stats.Simnet.bytes_sent;
  check int_ "bytes received" 400 net.Simnet.stats.Simnet.bytes_received

let test_simnet_parallel_charges_max () =
  let net = Simnet.create ~config:(config 0. 100.) () in
  Simnet.register net "xrpc://a" (fun _ -> String.make 100 'a');
  Simnet.register net "xrpc://b" (fun _ -> String.make 500 'b');
  let rs = Simnet.send_parallel net [ ("xrpc://a", "x"); ("xrpc://b", "x") ] in
  check int_ "both answered" 2 (List.length rs);
  (* max(1.01, 5.01) rather than the 6.02 sum *)
  check (Alcotest.float 0.001) "max not sum" 5.01 net.Simnet.clock_ms

let test_simnet_unknown_peer () =
  (* an unregistered destination speaks the unified error vocabulary,
     so the policy layer treats it like any other unreachable peer *)
  let net = Simnet.create () in
  match Simnet.send net ~dest:"xrpc://nope" "x" with
  | _ -> Alcotest.fail "unknown peer answered"
  | exception
      Transport.Error
        { Xrpc_net.Xrpc_error.kind = Transport.Unreachable; dest; _ } ->
      Alcotest.check Alcotest.string "dest reported" "xrpc://nope" dest

let test_simnet_network_ms_excludes_cpu () =
  let net =
    Simnet.create
      ~config:{ Simnet.latency_ms = 1.; bandwidth_bytes_per_ms = Float.infinity;
                charge_cpu = true }
      ()
  in
  Simnet.register net "xrpc://slow" (fun body ->
      Unix.sleepf 0.01;
      body);
  ignore (Simnet.send net ~dest:"xrpc://slow" "x");
  check (Alcotest.float 0.0001) "wire only" 2.0 net.Simnet.stats.Simnet.network_ms;
  check bool_ "clock includes cpu" true (net.Simnet.clock_ms > 10.)

let test_simnet_reset () =
  let net = Simnet.create ~config:(config 1. Float.infinity) () in
  Simnet.register net "xrpc://a" (fun b -> b);
  ignore (Simnet.send net ~dest:"xrpc://a" "x");
  Simnet.reset_clock net;
  Simnet.reset_stats net;
  check (Alcotest.float 0.) "clock reset" 0. net.Simnet.clock_ms;
  check int_ "stats reset" 0 net.Simnet.stats.Simnet.messages

(* ------------------------------------------------------------------ *)
(* HTTP                                                                *)
(* ------------------------------------------------------------------ *)

let test_http_roundtrip () =
  let server =
    Http.serve (fun ~path body ->
        Printf.sprintf "path=%s body=%s" path body)
  in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let r =
        Http.post ~host:"127.0.0.1" ~port:(Http.port server) ~path:"/svc" "ping"
      in
      check string_ "roundtrip" "path=/svc body=ping" r)

let test_http_large_body () =
  let server = Http.serve (fun ~path:_ body -> body) in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let payload = String.init 200_000 (fun i -> Char.chr (32 + (i mod 90))) in
      let r = Http.post ~host:"127.0.0.1" ~port:(Http.port server) payload in
      check bool_ "200k echoed" true (String.equal r payload))

let test_http_transport_parallel () =
  let server = Http.serve (fun ~path:_ body -> "<" ^ body ^ ">") in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let t = Http.transport () in
      let dest = Printf.sprintf "xrpc://127.0.0.1:%d" (Http.port server) in
      let rs = t.Transport.send_parallel [ (dest, "a"); (dest, "b"); (dest, "c") ] in
      check (Alcotest.list string_) "parallel" [ "<a>"; "<b>"; "<c>" ] rs)

let test_http_error_status () =
  let server = Http.serve (fun ~path:_ _ -> failwith "boom") in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      match Http.post ~host:"127.0.0.1" ~port:(Http.port server) "x" with
      | exception Http.Http_error _ -> ()
      | r -> Alcotest.fail ("expected 500, got " ^ r))

let test_http_concurrent_peer () =
  (* many threads hammering one peer over real HTTP: the peer lock must
     keep its state consistent *)
  let peer = Xrpc_peer.Peer.create "xrpc://127.0.0.1" in
  Xrpc_workloads.Filmdb.install peer ();
  let server =
    Http.serve (fun ~path:_ body -> Xrpc_peer.Peer.handle_raw peer body)
  in
  Fun.protect
    ~finally:(fun () -> Http.shutdown server)
    (fun () ->
      let body =
        Xrpc_soap.Message.to_string
          (Xrpc_soap.Message.Request
             {
               Xrpc_soap.Message.module_uri = "films";
               location = Xrpc_workloads.Filmdb.module_at;
               method_ = "filmsByActor";
               arity = 1;
               updating = false;
               fragments = false;
               query_id = None;
               idem_key = None; cache_ok = true;
               calls = [ [ [ Xrpc_xml.Xdm.str "Sean Connery" ] ] ];
             })
      in
      let ok = Atomic.make 0 in
      let threads =
        List.init 16 (fun _ ->
            Thread.create
              (fun () ->
                for _ = 1 to 5 do
                  match
                    Xrpc_soap.Message.of_string
                      (Http.post ~host:"127.0.0.1" ~port:(Http.port server) body)
                  with
                  | Xrpc_soap.Message.Response { results = [ r ]; _ }
                    when List.length r = 2 ->
                      Atomic.incr ok
                  | _ -> ()
                done)
              ())
      in
      List.iter Thread.join threads;
      check int_ "all 80 requests answered correctly" 80 (Atomic.get ok);
      check int_ "peer counted them" 80 peer.Xrpc_peer.Peer.requests_handled)

let () =
  Alcotest.run "net"
    [
      ( "uri",
        [
          Alcotest.test_case "full" `Quick test_uri_full;
          Alcotest.test_case "minimal" `Quick test_uri_minimal;
          Alcotest.test_case "bare host" `Quick test_uri_bare_host;
          Alcotest.test_case "bad" `Quick test_uri_bad;
        ] );
      ( "simnet",
        [
          Alcotest.test_case "latency" `Quick test_simnet_latency_accounting;
          Alcotest.test_case "bandwidth" `Quick test_simnet_bandwidth_accounting;
          Alcotest.test_case "parallel = max" `Quick
            test_simnet_parallel_charges_max;
          Alcotest.test_case "unknown peer" `Quick test_simnet_unknown_peer;
          Alcotest.test_case "network_ms excludes cpu" `Quick
            test_simnet_network_ms_excludes_cpu;
          Alcotest.test_case "reset" `Quick test_simnet_reset;
        ] );
      ( "http",
        [
          Alcotest.test_case "roundtrip" `Quick test_http_roundtrip;
          Alcotest.test_case "large body" `Quick test_http_large_body;
          Alcotest.test_case "parallel transport" `Quick
            test_http_transport_parallel;
          Alcotest.test_case "server error" `Quick test_http_error_status;
          Alcotest.test_case "concurrent peer over HTTP" `Quick
            test_http_concurrent_peer;
        ] );
    ]
