(* Chaos suite: deterministic fault injection over the simulated network.

   Every schedule is driven by one seeded PRNG on the virtual clock, so a
   failing run is replayed exactly with

     FAULT_SEED=<n> dune runtest

   The suite covers: the backoff/jitter schedule and the circuit breaker
   (pure unit tests on a fake clock), per-fault-kind injection coverage,
   bit-for-bit replay determinism, a ~100-seed atomicity sweep over
   distributed updating queries (2PC + in-doubt recovery must leave every
   peer all-or-nothing), the same sweep with the participants resolved
   through xrpc://shard/<key> routing, the exactly-once property under duplicate
   delivery (with its negative control: idempotency cache off), and the
   retries-off negative control (the same seeds that commit with retries
   demonstrably abort without them). *)

open Xrpc_xml
module Cluster = Xrpc_core.Cluster
module Strategies = Xrpc_core.Strategies
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Xmark = Xrpc_workloads.Xmark
module Idem_cache = Xrpc_peer.Idem_cache
module Two_pc = Xrpc_peer.Two_pc
module Filmdb = Xrpc_workloads.Filmdb
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Message = Xrpc_soap.Message

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let float_ = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Backoff schedule (satellite: deterministic delays, cap, jitter)     *)
(* ------------------------------------------------------------------ *)

let pol =
  {
    Transport.default_policy with
    backoff_base_ms = 5.;
    backoff_cap_ms = 200.;
    backoff_jitter = 0.5;
  }

let test_backoff_exponential_capped () =
  (* rand = 1 keeps the full delay: pure exponential, clamped at the cap *)
  let d attempt = Transport.backoff_delay pol ~attempt ~rand:(fun () -> 1.) in
  List.iteri
    (fun attempt expected ->
      check float_
        (Printf.sprintf "attempt %d" attempt)
        expected (d attempt))
    [ 5.; 10.; 20.; 40.; 80.; 160.; 200.; 200. ]

let test_backoff_jitter_bounds () =
  (* jitter j randomizes the top fraction: delay ∈ [(1-j)·d, d] *)
  let lo = Transport.backoff_delay pol ~attempt:3 ~rand:(fun () -> 0.) in
  let hi = Transport.backoff_delay pol ~attempt:3 ~rand:(fun () -> 1.) in
  check float_ "floor is (1-j)·d" 20. lo;
  check float_ "ceiling is d" 40. hi;
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 100 do
    let d =
      Transport.backoff_delay pol ~attempt:3
        ~rand:(fun () -> Random.State.float rng 1.0)
    in
    if d < 20. || d > 40. then
      Alcotest.failf "jittered delay %.3f outside [20,40]" d
  done

let test_backoff_jitter_clamped () =
  (* out-of-range jitter values are clamped into [0,1] *)
  let crazy = { pol with backoff_jitter = 2. } in
  check float_ "jitter>1 behaves as 1" 0.
    (Transport.backoff_delay crazy ~attempt:0 ~rand:(fun () -> 0.));
  let none = { pol with backoff_jitter = -1. } in
  check float_ "jitter<0 behaves as 0" 5.
    (Transport.backoff_delay none ~attempt:0 ~rand:(fun () -> 0.5))

(* ------------------------------------------------------------------ *)
(* Circuit breaker on a fake clock (no real time anywhere)             *)
(* ------------------------------------------------------------------ *)

let breaker_fixture () =
  let t = ref 0. in
  let inner_calls = ref 0 in
  let failing = ref true in
  let inner =
    Transport.sequential (fun ~dest _body ->
        incr inner_calls;
        if !failing then
          Transport.error ~kind:Transport.Unreachable ~dest "down"
        else "pong")
  in
  let policy =
    {
      Transport.default_policy with
      max_retries = 0;
      breaker_threshold = 3;
      breaker_cooldown_ms = 100.;
    }
  in
  let p =
    Transport.with_policy ~policy
      ~now:(fun () -> !t)
      ~sleep:(fun d -> t := !t +. d)
      inner
  in
  (t, inner_calls, failing, p)

let expect_error f =
  match f () with
  | exception Transport.Error { kind; _ } -> kind
  | _ -> Alcotest.fail "expected a transport error"

let test_breaker_opens_and_fast_fails () =
  let _t, inner_calls, _failing, p = breaker_fixture () in
  let send () = (Transport.transport p).Transport.send ~dest:"d" "x" in
  for _ = 1 to 3 do
    check bool_ "unreachable" true (expect_error send = Transport.Unreachable)
  done;
  check bool_ "open after threshold" true
    (match Transport.breaker_state p "d" with
    | Transport.Open _ -> true
    | _ -> false);
  (* open circuit rejects locally without touching the wire *)
  check bool_ "fast fail" true (expect_error send = Transport.Circuit_open);
  check int_ "inner not called on fast fail" 3 !inner_calls;
  check int_ "fast fail counted" 1 (Transport.stats p).Transport.fast_fails

let test_breaker_half_open_then_reopens () =
  let t, inner_calls, _failing, p = breaker_fixture () in
  let send () = (Transport.transport p).Transport.send ~dest:"d" "x" in
  for _ = 1 to 3 do
    ignore (expect_error send)
  done;
  t := !t +. 100.;
  (* cooldown elapsed: one trial request goes through (half-open)... *)
  check bool_ "trial unreachable" true
    (expect_error send = Transport.Unreachable);
  check int_ "trial hit the wire" 4 !inner_calls;
  (* ...and its failure re-opens the circuit with a fresh cooldown *)
  check bool_ "re-opened" true (expect_error send = Transport.Circuit_open);
  check int_ "fast fail after reopen" 4 !inner_calls

let test_breaker_closes_on_success () =
  let t, _inner_calls, failing, p = breaker_fixture () in
  let send () = (Transport.transport p).Transport.send ~dest:"d" "x" in
  for _ = 1 to 3 do
    ignore (expect_error send)
  done;
  t := !t +. 100.;
  failing := false;
  check string_ "trial succeeds" "pong" (send ());
  check bool_ "closed again" true (Transport.breaker_state p "d" = Transport.Closed);
  check string_ "stays closed" "pong" (send ());
  check int_ "one open recorded" 1 (Transport.stats p).Transport.circuit_opens

let test_retry_until_success () =
  (* two failures then success: 3 attempts, 2 retries, backoff on the fake
     clock only *)
  let t = ref 0. in
  let left = ref 2 in
  let inner =
    Transport.sequential (fun ~dest _ ->
        if !left > 0 then begin
          decr left;
          Transport.error ~kind:Transport.Timeout ~dest "lost"
        end
        else "ok")
  in
  let p =
    Transport.with_policy
      ~policy:{ pol with max_retries = 3; backoff_jitter = 0. }
      ~now:(fun () -> !t)
      ~sleep:(fun d -> t := !t +. d)
      inner
  in
  check string_ "eventually ok" "ok" ((Transport.transport p).Transport.send ~dest:"d" "x");
  check int_ "attempts" 3 (Transport.stats p).Transport.attempts;
  check int_ "retries" 2 (Transport.stats p).Transport.retries;
  (* deterministic backoff with jitter off: 5 + 10 ms *)
  check float_ "slept exactly the schedule" 15. !t

(* ------------------------------------------------------------------ *)
(* Chaos clusters                                                      *)
(* ------------------------------------------------------------------ *)

(* determinism requires modeled time only: charge_cpu must be off *)
let sim_config = { Simnet.default_config with Simnet.charge_cpu = false }

let chaos_policy =
  {
    Transport.timeout_ms = 1_000.;
    max_retries = 4;
    backoff_base_ms = 5.;
    backoff_cap_ms = 40.;
    backoff_jitter = 0.5;
    breaker_threshold = 0 (* breaker covered by its own unit tests *);
    breaker_cooldown_ms = 100.;
  }

let names = [ "x.example.org"; "y.example.org"; "z.example.org" ]

let chaos_cluster ?faults ?policy () =
  let cluster = Cluster.create ~config:sim_config ?faults ?policy ~names () in
  let x = Cluster.peer cluster "x.example.org" in
  Filmdb.install (Cluster.peer cluster "y.example.org") ();
  Filmdb.install (Cluster.peer cluster "z.example.org") ~variant:`Z ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  (cluster, x)

let q_2pc =
  {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:addFilm("New", "Actor New")}|}

let count_film peer name =
  match
    Peer.query_seq peer
      (Printf.sprintf {|count(doc("filmDB.xml")//film[name = %S])|} name)
  with
  | [ Xdm.Atomic (Xs.Integer n) ] -> n
  | r -> Alcotest.failf "unexpected count result %s" (Xdm.to_display r)

(* ------------------------------------------------------------------ *)
(* Fault-kind coverage: one seeded schedule exercises every injector   *)
(* ------------------------------------------------------------------ *)

let test_fault_kinds_all_exercised () =
  let cluster, x =
    chaos_cluster
      ~faults:(Simnet.chaos ~seed:3 ~loss:0.15 ())
      ~policy:chaos_policy ()
  in
  (* q3 fans out to two peers in parallel — the reorderable shape *)
  for _ = 1 to 40 do
    (try
       ignore
         (Peer.query_seq x
            (Filmdb.q3 ~dest1:"xrpc://y.example.org"
               ~dest2:"xrpc://z.example.org"))
     with _ -> ())
  done;
  (* explicit controls: partition, heal, crash, restart *)
  Cluster.partition cluster [ "y.example.org" ];
  (try ignore (Peer.query_seq x (Filmdb.q1 ~dest:"xrpc://y.example.org"))
   with _ -> ());
  Cluster.heal cluster;
  Cluster.crash cluster "z.example.org";
  (try ignore (Peer.query_seq x (Filmdb.q1 ~dest:"xrpc://z.example.org"))
   with _ -> ());
  Cluster.restart cluster "z.example.org";
  ignore (Peer.query_seq x (Filmdb.q1 ~dest:"xrpc://z.example.org"));
  match Cluster.fault_stats cluster with
  | None -> Alcotest.fail "fault stats missing"
  | Some fs ->
      let nonzero what n =
        if n <= 0 then Alcotest.failf "fault kind never exercised: %s" what
      in
      nonzero "dropped request" fs.Simnet.dropped_requests;
      nonzero "dropped response" fs.Simnet.dropped_responses;
      nonzero "duplicate" fs.Simnet.duplicated;
      nonzero "delay" fs.Simnet.delayed;
      nonzero "reorder" fs.Simnet.reordered;
      nonzero "crash" fs.Simnet.crashes;
      nonzero "restart" fs.Simnet.restarts;
      nonzero "unreachable" fs.Simnet.unreachable

(* ------------------------------------------------------------------ *)
(* Replay determinism: same seed ⟹ bit-for-bit same run               *)
(* ------------------------------------------------------------------ *)

type trace = {
  clock : float;
  messages : int;
  bytes : int;
  faults : int * int * int * int * int * int * int * int;
  committed : bool;
  y_new : int;
  z_new : int;
  result : string;
}

let run_traced ~seed ~loss ~policy () =
  let cluster, x =
    chaos_cluster ~faults:(Simnet.chaos ~seed ~loss ()) ~policy ()
  in
  let committed, result =
    match Peer.query x q_2pc with
    | r -> (r.Peer.committed, Xdm.to_display r.Peer.value)
    | exception e -> (false, "error: " ^ Printexc.to_string e)
  in
  let clock = Cluster.clock_ms cluster in
  let stats = Cluster.stats cluster in
  let fs =
    match Cluster.fault_stats cluster with
    | Some f ->
        ( f.Simnet.dropped_requests, f.Simnet.dropped_responses,
          f.Simnet.duplicated, f.Simnet.delayed, f.Simnet.reordered,
          f.Simnet.crashes, f.Simnet.restarts, f.Simnet.unreachable )
    | None -> (0, 0, 0, 0, 0, 0, 0, 0)
  in
  (* network recovers: lift faults, let breakers cool, resolve in-doubt *)
  Cluster.clear_faults cluster;
  Simnet.sleep (Cluster.net cluster) (chaos_policy.Transport.breaker_cooldown_ms +. 1.);
  ignore (Cluster.resolve_in_doubt cluster);
  {
    clock;
    messages = stats.Simnet.messages;
    bytes = stats.Simnet.bytes_sent;
    faults = fs;
    committed;
    y_new = count_film (Cluster.peer cluster "y.example.org") "New";
    z_new = count_film (Cluster.peer cluster "z.example.org") "New";
    result;
  }

let test_replay_determinism () =
  (* a seed with a lively schedule, replayed: virtual-clock trace, message
     stats, fault stats and outcome must match bit for bit *)
  List.iter
    (fun seed ->
      let a = run_traced ~seed ~loss:0.05 ~policy:chaos_policy () in
      let b = run_traced ~seed ~loss:0.05 ~policy:chaos_policy () in
      if a <> b then
        Alcotest.failf "seed %d not reproducible (clock %.6f vs %.6f)" seed
          a.clock b.clock)
    [ 1; 7; 42; 1337 ]

(* ------------------------------------------------------------------ *)
(* Atomicity sweep: ~100 seeded schedules, all-or-nothing commits      *)
(* ------------------------------------------------------------------ *)

let replay_hint seed = Printf.sprintf "FAULT_SEED=%d dune runtest" seed

let chaos_seeds () =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> [ int_of_string (String.trim s) ]
  | None -> List.init 100 Fun.id

(* returns true iff the distributed update committed (after recovery) *)
let assert_atomic ~retries seed =
  let policy =
    if retries then chaos_policy else { chaos_policy with Transport.max_retries = 0 }
  in
  let t = run_traced ~seed ~loss:0.01 ~policy () in
  if t.y_new <> t.z_new then
    Alcotest.failf
      "seed %d violates atomicity: y=%d z=%d (committed=%b) — replay with: %s"
      seed t.y_new t.z_new t.committed (replay_hint seed);
  let expected = if t.committed then 1 else 0 in
  if t.y_new <> expected then
    Alcotest.failf
      "seed %d: coordinator says committed=%b but peers applied %d — replay with: %s"
      seed t.committed t.y_new (replay_hint seed);
  t.committed

let test_chaos_atomicity_sweep () =
  let seeds = chaos_seeds () in
  let committed =
    List.fold_left
      (fun n seed -> if assert_atomic ~retries:true seed then n + 1 else n)
      0 seeds
  in
  (* with retries, 1% loss must not stop the vast majority of commits *)
  if List.length seeds > 1 && committed * 10 < List.length seeds * 9 then
    Alcotest.failf "only %d/%d seeds committed with retries on" committed
      (List.length seeds)

(* ------------------------------------------------------------------ *)
(* Sharded 2PC: updates routed through xrpc://shard/<key>              *)
(* ------------------------------------------------------------------ *)

(* the same all-or-nothing sweep, but the two participants are virtual
   destinations the origin's shard router resolves mid-plan: a commit
   must land sh:put's <pending> marker on BOTH routed members, an abort
   on neither — ownership must never make atomicity leak *)

module Shard = Xrpc_peer.Shard
module Shardmod = Xrpc_workloads.Shardmod

let sharded_chaos_cluster ~seed () =
  let members = List.init 4 (fun i -> Printf.sprintf "s%d" i) in
  let cluster =
    Cluster.create ~config:sim_config
      ~faults:(Simnet.chaos ~seed ~loss:0.01 ())
      ~policy:chaos_policy
      ~names:("origin" :: members) ()
  in
  Cluster.register_module_everywhere cluster ~uri:Shardmod.module_ns
    ~location:Shardmod.module_at Shardmod.shard_module;
  let map =
    Shard.create ~replicas:1 (List.map (fun s -> "xrpc://" ^ s) members)
  in
  Cluster.set_shard_map cluster (Some map);
  Cluster.place_sharded cluster (Shardmod.records 12);
  (cluster, map, members)

(* two keys guaranteed to live on different members *)
let cross_shard_keys map =
  let keys = List.map fst (Shardmod.records 12) in
  let k1 = List.hd keys in
  let p1 = Shard.primary map k1 in
  let k2 = List.find (fun k -> Shard.primary map k <> p1) keys in
  (k1, k2)

let q_sharded_2pc k1 k2 =
  Printf.sprintf
    {|import module namespace sh="shard" at %S;
declare option xrpc:isolation "repeatable";
for $k in (%S, %S)
return execute at {concat("xrpc://shard/", $k)} {sh:put($k, "chaos")}|}
    Shardmod.module_at k1 k2

let count_pending cluster members key =
  List.fold_left
    (fun n m ->
      match
        Peer.query_seq (Cluster.peer cluster m)
          (Printf.sprintf {|count(doc("shard.xml")/*/pending[@key = %S])|} key)
      with
      | [ Xdm.Atomic (Xs.Integer n') ] -> n + n'
      | r -> Alcotest.failf "unexpected pending count %s" (Xdm.to_display r))
    0 members

let assert_sharded_atomic seed =
  let cluster, map, members = sharded_chaos_cluster ~seed () in
  let k1, k2 = cross_shard_keys map in
  let origin = Cluster.peer cluster "origin" in
  let committed =
    match Peer.query origin (q_sharded_2pc k1 k2) with
    | r -> r.Peer.committed
    | exception _ -> false
  in
  (* network recovers: lift faults, cool breakers, settle in-doubt *)
  Cluster.clear_faults cluster;
  Simnet.sleep (Cluster.net cluster)
    (chaos_policy.Transport.breaker_cooldown_ms +. 1.);
  ignore (Cluster.resolve_in_doubt cluster);
  let n1 = count_pending cluster members k1
  and n2 = count_pending cluster members k2 in
  if n1 <> n2 then
    Alcotest.failf
      "seed %d violates sharded atomicity: %s=%d %s=%d (committed=%b) — \
       replay with: %s"
      seed k1 n1 k2 n2 committed (replay_hint seed);
  let expected = if committed then 1 else 0 in
  if n1 <> expected then
    Alcotest.failf
      "seed %d: coordinator says committed=%b but shards applied %d — replay \
       with: %s"
      seed committed n1 (replay_hint seed);
  committed

let test_sharded_atomicity_sweep () =
  let seeds = chaos_seeds () in
  let committed =
    List.fold_left
      (fun n seed -> if assert_sharded_atomic seed then n + 1 else n)
      0 seeds
  in
  if List.length seeds > 1 && committed * 10 < List.length seeds * 9 then
    Alcotest.failf "only %d/%d sharded seeds committed with retries on"
      committed (List.length seeds)

let test_chaos_strategies () =
  (* the §5 distributed strategies under fault schedules: a run must
     either fail outright or return the exact fault-free answer — retried
     and duplicated requests never corrupt a result *)
  let scale = Xmark.small_scale in
  let q7 =
    {
      Strategies.local_doc = "persons.xml";
      remote_uri = "xrpc://B";
      remote_doc = "auctions.xml";
      module_ns = "functions_b";
      module_at = "http://example.org/b.xq";
    }
  in
  let strategies_cluster ?faults () =
    let cluster =
      Cluster.create ~config:sim_config ?faults ~policy:chaos_policy
        ~names:[ "A"; "B" ] ()
    in
    let a = Cluster.peer cluster "A" and b = Cluster.peer cluster "B" in
    Database.add_doc_xml a.Peer.db "persons.xml"
      (Xmark.persons ~count:scale.Xmark.persons ());
    Database.add_doc_xml b.Peer.db "auctions.xml"
      (Xmark.auctions ~count:scale.Xmark.auctions ~matches:scale.Xmark.matches
         ~persons_count:scale.Xmark.persons ());
    Cluster.register_module_everywhere cluster ~uri:q7.Strategies.module_ns
      ~location:q7.Strategies.module_at (Strategies.functions_b q7);
    (cluster, a)
  in
  let run a s = Peer.query_seq a (Strategies.query ~local_uri:"xrpc://A" q7 s) in
  let _, clean_a = strategies_cluster () in
  let baseline = Xdm.to_display (run clean_a Strategies.Distributed_semijoin) in
  let seeds =
    match Sys.getenv_opt "FAULT_SEED" with
    | Some s -> [ int_of_string (String.trim s) ]
    | None -> List.init 10 Fun.id
  in
  let ran = ref 0 and failed = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun s ->
          let _, a =
            strategies_cluster ~faults:(Simnet.chaos ~seed ~loss:0.02 ()) ()
          in
          match run a s with
          | r ->
              incr ran;
              if Xdm.to_display r <> baseline then
                Alcotest.failf
                  "seed %d corrupted a %s result under faults — replay with: %s"
                  seed (Strategies.name s) (replay_hint seed)
          | exception _ -> incr failed)
        Strategies.all)
    seeds;
  if List.length seeds > 1 && !ran = 0 then
    Alcotest.fail "every strategies run failed under 2% loss with retries on"

let test_chaos_negative_control () =
  (* the same seeds with retries disabled must show real aborts — proof
     the faults bite and the retry layer is what absorbs them.  Atomicity
     must hold either way. *)
  let seeds = chaos_seeds () in
  let aborts ~retries =
    List.fold_left
      (fun n seed -> if assert_atomic ~retries seed then n else n + 1)
      0 seeds
  in
  let without = aborts ~retries:false in
  let with_ = aborts ~retries:true in
  if List.length seeds > 1 then begin
    if without = 0 then
      Alcotest.fail "negative control: no seed aborted with retries disabled";
    if without <= with_ then
      Alcotest.failf
        "retries did not help: %d aborts without vs %d with" without with_
  end

(* ------------------------------------------------------------------ *)
(* Exactly-once under duplicate delivery                               *)
(* ------------------------------------------------------------------ *)

let dup_faults seed = { Simnet.no_faults with Simnet.fault_seed = seed; duplicate = 0.5 }

let add_films x n =
  for i = 1 to n do
    ignore
      (Peer.query_seq x
         (Printf.sprintf
            {|import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {f:addFilm("Dup %d", "A")}|}
            i))
  done

let film_db_display cluster =
  Xdm.to_display
    (Peer.query_seq (Cluster.peer cluster "y.example.org") {|doc("filmDB.xml")|})

let test_exactly_once_under_duplicates () =
  (* R_Fu applies remote updates per request (§2.2): duplicated delivery
     would double-apply them, unless replays hit the idempotency cache *)
  let faulty, fx = chaos_cluster ~faults:(dup_faults 7) () in
  add_films fx 10;
  let clean, cx = chaos_cluster () in
  add_films cx 10;
  (match Cluster.fault_stats faulty with
  | Some fs ->
      check bool_ "duplicates actually injected" true (fs.Simnet.duplicated > 0)
  | None -> Alcotest.fail "fault stats missing");
  check string_ "store identical to fault-free run" (film_db_display clean)
    (film_db_display faulty);
  let y = Cluster.peer faulty "y.example.org" in
  check bool_ "cache saw the replays" true
    (Idem_cache.hits y.Peer.idem_cache > 0)

let test_exactly_once_needs_idem_cache () =
  (* negative control: with the cache disabled the same schedule
     double-applies at least one update *)
  let faulty, fx = chaos_cluster ~faults:(dup_faults 7) () in
  let y = Cluster.peer faulty "y.example.org" in
  Idem_cache.set_enabled y.Peer.idem_cache false;
  add_films fx 10;
  let doubled = ref false in
  for i = 1 to 10 do
    if count_film y (Printf.sprintf "Dup %d" i) > 1 then doubled := true
  done;
  check bool_ "some update applied twice without the cache" true !doubled

let test_retry_does_not_reexecute () =
  (* a lost response forces a client retry of a request whose effects
     already happened; the replay must be served from the cache *)
  let cluster, x =
    chaos_cluster
      ~faults:{ Simnet.no_faults with Simnet.fault_seed = 5; drop = 0.2 }
      ~policy:chaos_policy ()
  in
  let y = Cluster.peer cluster "y.example.org" in
  for i = 1 to 20 do
    try
      ignore
        (Peer.query_seq x
           (Printf.sprintf
              {|import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {f:addFilm("Retry %d", "A")}|}
              i))
    with _ -> ()
  done;
  (match Cluster.fault_stats cluster with
  | Some fs ->
      check bool_ "responses were lost" true (fs.Simnet.dropped_responses > 0)
  | None -> Alcotest.fail "fault stats missing");
  for i = 1 to 20 do
    let n = count_film y (Printf.sprintf "Retry %d" i) in
    if n > 1 then
      Alcotest.failf "film %d applied %d times despite idempotency keys" i n
  done

(* ------------------------------------------------------------------ *)
(* Idem_cache boundaries: LRU order at capacity, replacement, and the  *)
(* at-least-once fallback once a key has been evicted                  *)
(* ------------------------------------------------------------------ *)

let test_idem_lru_eviction_order () =
  let c = Idem_cache.create ~capacity:3 () in
  Idem_cache.add c "k1" "r1";
  Idem_cache.add c "k2" "r2";
  Idem_cache.add c "k3" "r3";
  check int_ "at capacity" 3 (Idem_cache.size c);
  (* touch k1: k2 becomes the least recently used *)
  check bool_ "k1 hit" true (Idem_cache.find c "k1" = Some "r1");
  Idem_cache.add c "k4" "r4";
  check int_ "still at capacity" 3 (Idem_cache.size c);
  check int_ "one eviction" 1 (Idem_cache.evictions c);
  check bool_ "LRU key k2 evicted" true (Idem_cache.find c "k2" = None);
  check bool_ "k1 survived (recently used)" true
    (Idem_cache.find c "k1" = Some "r1");
  check bool_ "k3 survived" true (Idem_cache.find c "k3" = Some "r3");
  check bool_ "k4 present" true (Idem_cache.find c "k4" = Some "r4")

let test_idem_replace_at_capacity () =
  let c = Idem_cache.create ~capacity:2 () in
  Idem_cache.add c "k1" "r1";
  Idem_cache.add c "k2" "r2";
  (* replacing a key that is already cached must not evict anything,
     even with the cache exactly full *)
  Idem_cache.add c "k1" "r1'";
  check int_ "no growth" 2 (Idem_cache.size c);
  check int_ "no eviction" 0 (Idem_cache.evictions c);
  check bool_ "replaced value served" true (Idem_cache.find c "k1" = Some "r1'");
  check bool_ "other key untouched" true (Idem_cache.find c "k2" = Some "r2")

(* a raw updating request carrying an explicit idempotency key *)
let add_film_request ~key name =
  Message.to_string
    (Message.Request
       {
         Message.module_uri = Filmdb.module_ns;
         location = Filmdb.module_at;
         method_ = "addFilm";
         arity = 2;
         updating = true;
         fragments = false;
         query_id = None;
         idem_key = Some key; cache_ok = true;
         calls = [ [ [ Xdm.str name ]; [ Xdm.str "Actor E" ] ] ];
       })

let test_idem_evicted_key_reexecutes () =
  (* regression: replaying a key the LRU has already evicted must fall
     back to at-least-once (re-execute and answer), never error.  The
     visible consequence — the update applies twice — is exactly the
     documented at-least-once semantics past the cache horizon. *)
  let cluster =
    Cluster.create ~config:sim_config
      ~peer_config:{ Peer.default_config with Peer.idem_capacity = 2 }
      ~names:[ "y.example.org" ] ()
  in
  let y = Cluster.peer cluster "y.example.org" in
  Filmdb.install y ();
  let expect_response what out =
    match Message.of_string out with
    | Message.Response _ -> ()
    | Message.Fault f -> Alcotest.failf "%s answered a fault: %s" what f.Message.reason
    | _ -> Alcotest.failf "%s: unexpected reply" what
  in
  let body = add_film_request ~key:"kA" "Evict Me" in
  expect_response "first execution" (Peer.handle_raw y body);
  check int_ "applied once" 1 (count_film y "Evict Me");
  (* replay while cached: served from the cache, not re-executed *)
  expect_response "cached replay" (Peer.handle_raw y body);
  check int_ "not re-applied while cached" 1 (count_film y "Evict Me");
  check bool_ "cache hit recorded" true (Idem_cache.hits y.Peer.idem_cache > 0);
  (* two fresh keys flood the capacity-2 cache; kA is the LRU victim *)
  expect_response "flood 1" (Peer.handle_raw y (add_film_request ~key:"kB" "Other B"));
  expect_response "flood 2" (Peer.handle_raw y (add_film_request ~key:"kC" "Other C"));
  check int_ "kA evicted" 1 (Idem_cache.evictions y.Peer.idem_cache);
  (* replay after eviction: must re-execute, not fail *)
  expect_response "post-eviction replay" (Peer.handle_raw y body);
  check int_ "at-least-once fallback re-applied" 2 (count_film y "Evict Me")

(* ------------------------------------------------------------------ *)
(* 2PC decision phase (satellite: run_detailed must not swallow acks)  *)
(* ------------------------------------------------------------------ *)

let is_commit_msg body =
  match Message.of_string body with
  | Message.Tx_request (Message.Commit, _) -> true
  | _ -> false
  | exception _ -> false

let test_2pc_participant_misses_commit () =
  let cluster, x = chaos_cluster () in
  let y = Cluster.peer cluster "y.example.org" in
  let z = Cluster.peer cluster "z.example.org" in
  (* y votes yes, then every Commit to y is garbled on the wire *)
  let y_handler = Peer.handle_raw y in
  Simnet.register (Cluster.net cluster) "xrpc://y.example.org" (fun body ->
      if is_commit_msg body then "<<<line noise" else y_handler body);
  let r = Peer.query x q_2pc in
  check bool_ "coordinator committed" true r.Peer.committed;
  (* the decision acks must record exactly which participant is in doubt —
     this is the regression: run_detailed used to drop them *)
  (match r.Peer.tx with
  | None -> Alcotest.fail "expected a 2PC outcome"
  | Some o ->
      check int_ "two votes" 2 (List.length o.Two_pc.votes);
      check bool_ "all voted yes" true
        (List.for_all (fun v -> v.Two_pc.ok) o.Two_pc.votes);
      let ack p =
        List.find (fun v -> v.Two_pc.peer = p) o.Two_pc.decision_acks
      in
      check bool_ "z acked the commit" true (ack "xrpc://z.example.org").Two_pc.ok;
      check bool_ "y's ack failed" true
        (ack "xrpc://y.example.org").Two_pc.transport_failed);
  check int_ "z applied" 1 (count_film z "New");
  check int_ "y still in doubt" 0 (count_film y "New");
  (* wire recovers; y asks the coordinator and learns the commit *)
  Simnet.register (Cluster.net cluster) "xrpc://y.example.org" y_handler;
  let committed, aborted, in_doubt = Peer.resolve_in_doubt y in
  check int_ "recovered commit" 1 committed;
  check int_ "no aborts" 0 aborted;
  check int_ "nothing left in doubt" 0 in_doubt;
  check int_ "y applied after recovery" 1 (count_film y "New")

let test_status_unknown_means_abort () =
  (* presumed abort: a coordinator that never logged the decision answers
     "unknown", which participants must read as aborted *)
  let cluster, x = chaos_cluster () in
  ignore x;
  let y = Cluster.peer cluster "y.example.org" in
  let qid =
    { Message.host = "xrpc://x.example.org"; timestamp = "9.9"; timeout = 30;
      level = Message.Repeatable }
  in
  let v =
    Two_pc.status
      ~transport:(Option.get y.Peer.transport)
      ~dest:"xrpc://x.example.org" qid
  in
  check bool_ "not committed" false v.Two_pc.ok;
  check bool_ "a definite answer, not a transport failure" false
    v.Two_pc.transport_failed

let () =
  Alcotest.run "faults"
    [
      ( "backoff",
        [
          Alcotest.test_case "exponential, capped" `Quick
            test_backoff_exponential_capped;
          Alcotest.test_case "jitter bounds" `Quick test_backoff_jitter_bounds;
          Alcotest.test_case "jitter clamped" `Quick test_backoff_jitter_clamped;
          Alcotest.test_case "retry until success" `Quick test_retry_until_success;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens and fast-fails" `Quick
            test_breaker_opens_and_fast_fails;
          Alcotest.test_case "half-open reopens on failure" `Quick
            test_breaker_half_open_then_reopens;
          Alcotest.test_case "closes on success" `Quick
            test_breaker_closes_on_success;
        ] );
      ( "injection",
        [
          Alcotest.test_case "every fault kind exercised" `Quick
            test_fault_kinds_all_exercised;
          Alcotest.test_case "seeded replay is bit-for-bit" `Quick
            test_replay_determinism;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "atomicity sweep (100 seeds)" `Quick
            test_chaos_atomicity_sweep;
          Alcotest.test_case "sharded atomicity sweep (100 seeds)" `Quick
            test_sharded_atomicity_sweep;
          Alcotest.test_case "strategies return exact results" `Quick
            test_chaos_strategies;
          Alcotest.test_case "negative control: retries off" `Quick
            test_chaos_negative_control;
        ] );
      ( "exactly-once",
        [
          Alcotest.test_case "duplicates do not double-apply" `Quick
            test_exactly_once_under_duplicates;
          Alcotest.test_case "negative control: cache off" `Quick
            test_exactly_once_needs_idem_cache;
          Alcotest.test_case "retries do not re-execute" `Quick
            test_retry_does_not_reexecute;
        ] );
      ( "idem-cache",
        [
          Alcotest.test_case "LRU eviction order at capacity" `Quick
            test_idem_lru_eviction_order;
          Alcotest.test_case "replacement does not evict" `Quick
            test_idem_replace_at_capacity;
          Alcotest.test_case "evicted key re-executes on replay" `Quick
            test_idem_evicted_key_reexecutes;
        ] );
      ( "two-pc",
        [
          Alcotest.test_case "participant misses Commit" `Quick
            test_2pc_participant_misses_commit;
          Alcotest.test_case "unknown status means abort" `Quick
            test_status_unknown_means_abort;
        ] );
    ]
