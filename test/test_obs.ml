(* Observability suite: the metrics registry, the tracer, SOAP header
   propagation of trace context, and the end-to-end guarantee of the PR —
   a distributed query over simulated peers yields ONE reconstructable
   span tree, whose shape is deterministic under seeded chaos.

   Span-tree invariants checked under fault injection:
     - no span leaks open across timeouts/retries/failures,
     - every recorded span's parent is itself recorded (live parentage),
     - the same fault seed replays to an identical tree signature. *)

open Xrpc_xml
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace
module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Two_pc = Xrpc_peer.Two_pc
module Simnet = Xrpc_net.Simnet
module Transport = Xrpc_net.Transport
module Message = Xrpc_soap.Message
module Filmdb = Xrpc_workloads.Filmdb
module Testmod = Xrpc_workloads.Testmod

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* Every test leaves the global tracer exactly as it found it: disabled,
   wall clock, empty buffer. *)
let with_tracer f =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.use_wall_clock ();
      Trace.set_process_tag "";
      Trace.reset ())
    f

let fake_clock () =
  let t = ref 0. in
  Trace.set_clock (fun () -> !t);
  t

let span_names () = List.map (fun s -> s.Trace.name) (Trace.spans ())

let find_span name =
  match List.find_opt (fun s -> s.Trace.name = name) (Trace.spans ()) with
  | Some s -> s
  | None ->
      Alcotest.failf "no span named %s in [%s]" name
        (String.concat "; " (span_names ()))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters_gauges () =
  Metrics.reset ();
  let c = Metrics.counter "t.requests" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.incr_by c 3;
  check int_ "counter accumulates" 5 c.Metrics.count;
  (* create-or-get: same name returns the same live handle *)
  let c' = Metrics.counter "t.requests" in
  Metrics.incr c';
  check int_ "same handle" 6 c.Metrics.count;
  let g = Metrics.gauge "t.depth" in
  Metrics.set g 2.5;
  Metrics.add g 1.5;
  check (Alcotest.float 1e-9) "gauge" 4.0 g.Metrics.value;
  (* a name registered as one type cannot come back as another *)
  (match Metrics.gauge "t.requests" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash accepted")

let test_metrics_histogram_quantiles () =
  Metrics.reset ();
  let h = Metrics.histogram "t.lat_ms" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  check int_ "count" 100 h.Metrics.n;
  check (Alcotest.float 1e-6) "sum" 5050. h.Metrics.sum;
  check (Alcotest.float 1e-6) "mean" 50.5 (Metrics.mean h);
  (* log-bucketed estimates: correct to within one sqrt(2) bucket factor *)
  let p50 = Metrics.quantile h 0.50 in
  if p50 < 25. || p50 > 75. then Alcotest.failf "p50 estimate %.1f off" p50;
  let p99 = Metrics.quantile h 0.99 in
  if p99 < 64. || p99 > 100. then Alcotest.failf "p99 estimate %.1f off" p99;
  (* estimates are clamped into the observed range *)
  if Metrics.quantile h 1.0 > 100. then Alcotest.fail "quantile above max";
  if Metrics.quantile h 0.0 < 1. then Alcotest.fail "quantile below min";
  let empty = Metrics.histogram "t.empty" in
  check bool_ "empty histogram quantile is nan" true
    (Float.is_nan (Metrics.quantile empty 0.5))

let test_metrics_exporters_and_reset () =
  Metrics.reset ();
  let c = Metrics.counter "t.hits" in
  Metrics.incr_by c 7;
  let h = Metrics.histogram "t.ms" in
  Metrics.observe h 10.;
  let text = Metrics.to_text () in
  let has needle hay =
    let nl = String.length needle in
    let rec go i = i + nl <= String.length hay
                   && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool_ "text has counter" true (has "t.hits 7" text);
  check bool_ "text has histogram count" true (has "t.ms_count 1" text);
  check bool_ "text has p95 line" true (has "t.ms_p95" text);
  let json = Metrics.to_json () in
  check bool_ "json has counter" true (has "\"t.hits\": 7" json);
  check bool_ "json has histogram object" true (has "\"count\": 1" json);
  (* reset zeroes values but keeps handles registered and live *)
  Metrics.reset ();
  check int_ "counter zeroed" 0 c.Metrics.count;
  check int_ "histogram zeroed" 0 h.Metrics.n;
  Metrics.incr c;
  check int_ "old handle still wired" 1 (Metrics.counter "t.hits").Metrics.count

(* ------------------------------------------------------------------ *)
(* Tracer unit tests on a fake clock                                   *)
(* ------------------------------------------------------------------ *)

let test_trace_nesting_and_timing () =
  with_tracer @@ fun () ->
  let t = fake_clock () in
  Trace.set_enabled true;
  Trace.with_span "root" (fun () ->
      t := 1.;
      Trace.with_span ~detail:"d" "child" (fun () ->
          t := 3.;
          Trace.event ~detail:"e" "tick");
      t := 10.);
  let root = find_span "root" and child = find_span "child" in
  check string_ "one trace" root.Trace.trace_id child.Trace.trace_id;
  check bool_ "root is a root" true (root.Trace.parent = None);
  check bool_ "child under root" true
    (child.Trace.parent = Some root.Trace.span_id);
  check (Alcotest.float 1e-9) "root duration" 10. (Trace.duration_ms root);
  check (Alcotest.float 1e-9) "child duration" 2. (Trace.duration_ms child);
  (match child.Trace.events with
  | [ e ] ->
      check string_ "event name" "tick" e.Trace.e_name;
      check (Alcotest.float 1e-9) "event time" 3. e.Trace.e_at
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  check int_ "no open spans" 0 (Trace.open_count ())

let test_trace_closes_on_exception () =
  with_tracer @@ fun () ->
  ignore (fake_clock ());
  Trace.set_enabled true;
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check int_ "two spans recorded" 2 (List.length (Trace.spans ()));
  check int_ "none left open" 0 (Trace.open_count ())

let test_trace_disabled_is_free () =
  with_tracer @@ fun () ->
  check bool_ "disabled by default" false (Trace.enabled ());
  Trace.with_span "nope" (fun () -> Trace.event "nothing");
  check int_ "nothing recorded" 0 (List.length (Trace.spans ()));
  check bool_ "no propagation context" true (Trace.propagation () = None)

let test_trace_remote_parent_and_propagation () =
  with_tracer @@ fun () ->
  ignore (fake_clock ());
  Trace.set_enabled true;
  let ctx = ref None in
  Trace.with_span "client" (fun () -> ctx := Trace.propagation ());
  let trace_id, parent =
    match !ctx with Some c -> c | None -> Alcotest.fail "no context"
  in
  (* "the server side": adopt the propagated context *)
  Trace.with_remote_parent ~trace_id ~parent "server" (fun () ->
      Trace.with_span "work" (fun () -> ()));
  let server = find_span "server" and work = find_span "work" in
  check string_ "server joins the client's trace" trace_id server.Trace.trace_id;
  check bool_ "server under the client span" true
    (server.Trace.parent = Some parent);
  check string_ "nested work inherits the trace" trace_id work.Trace.trace_id;
  (* the stitched structure renders as ONE tree: client is the only root *)
  let roots, _ = Trace.tree_of (Trace.spans ()) in
  check int_ "single root" 1 (List.length roots)

let test_trace_capacity_bounded () =
  with_tracer @@ fun () ->
  ignore (fake_clock ());
  Trace.set_enabled true;
  Trace.set_capacity 10;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity 50_000)
    (fun () ->
      for _ = 1 to 25 do
        Trace.with_span "s" (fun () -> ())
      done;
      check int_ "buffer capped" 10 (List.length (Trace.spans ()));
      check int_ "overflow counted" 15 (Trace.dropped_count ()))

(* ------------------------------------------------------------------ *)
(* SOAP envelope propagation                                           *)
(* ------------------------------------------------------------------ *)

let ping_request =
  Message.Request
    {
      Message.module_uri = "test";
      location = "http://x.example.org/test.xq";
      method_ = "ping";
      arity = 1;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.int 1 ] ] ];
    }

let test_envelope_header_roundtrip () =
  with_tracer @@ fun () ->
  (* explicit context *)
  let s = Message.to_string ~trace:("t9", "s9") ping_request in
  (match Message.of_string_traced s with
  | Message.Request r, Some (tid, sid) ->
      check string_ "method survives" "ping" r.Message.method_;
      check string_ "trace id" "t9" tid;
      check string_ "parent span" "s9" sid
  | _ -> Alcotest.fail "bad parse");
  (* no context, no header *)
  (match Message.of_string_traced (Message.to_string ping_request) with
  | Message.Request _, None -> ()
  | _, Some _ -> Alcotest.fail "spurious trace header"
  | _, None -> Alcotest.fail "bad parse")

let test_envelope_ambient_stamping () =
  with_tracer @@ fun () ->
  ignore (fake_clock ());
  Trace.set_enabled true;
  Trace.with_span "caller" (fun () ->
      let s = Message.to_string ping_request in
      let caller = find_span "caller" in
      match Message.of_string_traced s with
      | _, Some (tid, sid) ->
          check string_ "ambient trace id" caller.Trace.trace_id tid;
          check string_ "ambient parent is the open span" caller.Trace.span_id sid
      | _, None -> Alcotest.fail "enabled tracer did not stamp the envelope")

(* ------------------------------------------------------------------ *)
(* Distributed span trees over the simulated network                   *)
(* ------------------------------------------------------------------ *)

let sim_config = { Simnet.default_config with Simnet.charge_cpu = false }

let test_cluster () =
  let cluster = Cluster.create ~config:sim_config ~names:[ "x"; "y"; "z" ] () in
  List.iter
    (fun n ->
      Peer.register_module (Cluster.peer cluster n) ~uri:Testmod.module_ns
        ~location:Testmod.module_at Testmod.test_module)
    [ "x"; "y"; "z" ];
  cluster

let q_two_peers =
  {|import module namespace t="test" at "http://x.example.org/test.xq";
for $d in ("xrpc://y", "xrpc://z")
return execute at {$d} {t:ping(1)}|}

let assert_parents_live () =
  let all = Trace.spans () in
  let ids = List.map (fun s -> s.Trace.span_id) all in
  List.iter
    (fun s ->
      match s.Trace.parent with
      | None -> ()
      | Some p ->
          if not (List.mem p ids) then
            Alcotest.failf "span %s (%s) has dangling parent %s" s.Trace.span_id
              s.Trace.name p)
    all

let test_distributed_single_tree () =
  with_tracer @@ fun () ->
  let cluster = test_cluster () in
  Cluster.enable_tracing cluster;
  let r = Peer.query_seq (Cluster.peer cluster "x") q_two_peers in
  check string_ "query answered" "1 1" (Xdm.to_display r);
  (* one query over two remote peers: a single trace, a single root *)
  let all = Trace.spans () in
  check bool_ "spans recorded" true (List.length all > 5);
  let root_trace = (List.hd all).Trace.trace_id in
  List.iter
    (fun s -> check string_ "single trace id" root_trace s.Trace.trace_id)
    all;
  let roots, _ = Trace.tree_of all in
  (match roots with
  | [ r ] -> check string_ "root is the client query" "query" r.Trace.name
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  assert_parents_live ();
  check int_ "no span left open" 0 (Trace.open_count ());
  (* client compile, transport, both peers' handling and evals are all
     stitched into the one tree *)
  let names = span_names () in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "phase %s missing" n)
    [ "client.compile"; "client.exec"; "net.send"; "peer.handle";
      "peer.exec"; "eval.apply" ];
  check int_ "both peers handled under the same tree" 2
    (List.length (List.filter (( = ) "peer.handle") names));
  (* per-phase rollup covers the handled requests *)
  let phases = Trace.phase_summary () in
  (match List.find_opt (fun (n, _, _) -> n = "peer.handle") phases with
  | Some (_, count, _) -> check int_ "summary counts both peers" 2 count
  | None -> Alcotest.fail "peer.handle missing from phase summary")

let test_2pc_phases_traced () =
  with_tracer @@ fun () ->
  let cluster = Cluster.create ~config:sim_config ~names:[ "x"; "y"; "z" ] () in
  let x = Cluster.peer cluster "x" in
  Filmdb.install (Cluster.peer cluster "y") ();
  Filmdb.install (Cluster.peer cluster "z") ~variant:`Z ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;
  Cluster.enable_tracing cluster;
  let r =
    Peer.query x
      {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
for $dst in ("xrpc://y", "xrpc://z")
return execute at {$dst} {f:addFilm("Traced", "Actor T")}|}
  in
  check bool_ "transaction committed" true r.Peer.committed;
  let names = span_names () in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "2PC span %s missing" n)
    [ "2pc"; "2pc.prepare"; "2pc.decision"; "peer.commit"; "client.commit" ];
  let prepare = find_span "2pc.prepare" in
  check int_ "both votes recorded as events" 2
    (List.length
       (List.filter (fun e -> e.Trace.e_name = "vote-yes") prepare.Trace.events));
  check int_ "no span left open" 0 (Trace.open_count ());
  assert_parents_live ()

(* ------------------------------------------------------------------ *)
(* Chaos: span invariants + replay-deterministic trees                 *)
(* ------------------------------------------------------------------ *)

let chaos_policy =
  {
    Transport.timeout_ms = 1_000.;
    max_retries = 4;
    backoff_base_ms = 5.;
    backoff_cap_ms = 40.;
    backoff_jitter = 0.5;
    breaker_threshold = 0;
    breaker_cooldown_ms = 100.;
  }

(* Run a batch of queries under a seeded fault schedule with tracing on;
   return (signature, fault stats, open spans, queries failed). *)
let chaos_traced_run ~seed ~loss =
  Trace.reset ();
  let cluster =
    Cluster.create ~config:sim_config
      ~faults:(Simnet.chaos ~seed ~loss ())
      ~policy:chaos_policy ~names:[ "x"; "y"; "z" ] ()
  in
  List.iter
    (fun n ->
      Peer.register_module (Cluster.peer cluster n) ~uri:Testmod.module_ns
        ~location:Testmod.module_at Testmod.test_module)
    [ "x"; "y"; "z" ];
  Cluster.enable_tracing cluster;
  let x = Cluster.peer cluster "x" in
  let failed = ref 0 in
  for _ = 1 to 15 do
    try ignore (Peer.query_seq x q_two_peers) with _ -> incr failed
  done;
  let sig_ = Trace.signature () in
  let opens = Trace.open_count () in
  assert_parents_live ();
  let fs = Option.get (Cluster.fault_stats cluster) in
  Cluster.disable_tracing ();
  (sig_, fs, opens, !failed)

let test_chaos_no_leaked_spans () =
  with_tracer @@ fun () ->
  List.iter
    (fun seed ->
      let _, fs, opens, _ = chaos_traced_run ~seed ~loss:0.10 in
      (* the schedule must actually bite for the test to mean anything *)
      check bool_
        (Printf.sprintf "seed %d injected faults" seed)
        true
        (fs.Simnet.dropped_requests + fs.Simnet.dropped_responses
         + fs.Simnet.delayed + fs.Simnet.duplicated
         > 0);
      check int_ (Printf.sprintf "seed %d leaked open spans" seed) 0 opens)
    [ 3; 5; 11 ]

let test_chaos_retry_events_in_tree () =
  with_tracer @@ fun () ->
  (* at 10% loss with retries on, the trace must show the recovery work:
     failed attempts and backoff sleeps recorded as span events *)
  let sig_, fs, _, _ = chaos_traced_run ~seed:5 ~loss:0.10 in
  check bool_ "faults bit" true
    (fs.Simnet.dropped_requests + fs.Simnet.dropped_responses > 0);
  let has needle hay =
    let nl = String.length needle in
    let rec go i = i + nl <= String.length hay
                   && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool_ "failed attempts traced" true (has "attempt-failed" sig_);
  check bool_ "backoff sleeps traced" true (has "backoff" sig_)

let test_chaos_span_tree_replay () =
  with_tracer @@ fun () ->
  List.iter
    (fun seed ->
      let a, _, _, fa = chaos_traced_run ~seed ~loss:0.05 in
      let b, _, _, fb = chaos_traced_run ~seed ~loss:0.05 in
      check int_ (Printf.sprintf "seed %d same failures" seed) fa fb;
      if a <> b then
        Alcotest.failf
          "seed %d: span tree not reproducible\n--- run 1 ---\n%s\n--- run 2 ---\n%s"
          seed a b;
      (* different seeds are allowed to differ; identical ones must not *)
      let c, _, _, _ = chaos_traced_run ~seed:(seed + 1000) ~loss:0.05 in
      ignore c)
    [ 1; 7; 42 ]

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram quantiles" `Quick
            test_metrics_histogram_quantiles;
          Alcotest.test_case "exporters and reset" `Quick
            test_metrics_exporters_and_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and timing" `Quick
            test_trace_nesting_and_timing;
          Alcotest.test_case "closes on exception" `Quick
            test_trace_closes_on_exception;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_is_free;
          Alcotest.test_case "remote parent stitching" `Quick
            test_trace_remote_parent_and_propagation;
          Alcotest.test_case "bounded buffer" `Quick test_trace_capacity_bounded;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "envelope header round-trip" `Quick
            test_envelope_header_roundtrip;
          Alcotest.test_case "ambient context stamping" `Quick
            test_envelope_ambient_stamping;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "one tree across two peers" `Quick
            test_distributed_single_tree;
          Alcotest.test_case "2PC phases traced" `Quick test_2pc_phases_traced;
        ] );
      ( "chaos-spans",
        [
          Alcotest.test_case "no span leaks under faults" `Quick
            test_chaos_no_leaked_spans;
          Alcotest.test_case "retries visible as events" `Quick
            test_chaos_retry_events_in_tree;
          Alcotest.test_case "seeded replay, same tree" `Quick
            test_chaos_span_tree_replay;
        ] );
    ]
