(* Profiling suite: the Profile plan-node collector and its operator /
   destination accounting, the always-on flight recorder (ring eviction,
   pinned slow queries, concurrent writers), the Chrome trace-event and
   span-tree exporters, the metrics satellites (histogram clamping,
   labeled series), and the end-to-end acceptance of the PR — profiling a
   distributed query over two simulated peers yields per-destination
   byte/call counts and the remote side's parse/compile/exec phase
   breakdown, at zero recording cost when profiling is off. *)

open Xrpc_xml
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile
module Flight_recorder = Xrpc_obs.Flight_recorder
module Export = Xrpc_obs.Export
module Cluster = Xrpc_core.Cluster
module Client = Xrpc_core.Xrpc_client
module Peer = Xrpc_peer.Peer
module Simnet = Xrpc_net.Simnet
module Message = Xrpc_soap.Message
module Looplift = Xrpc_algebra.Looplift
module Ops = Xrpc_algebra.Ops
module Table = Xrpc_algebra.Table
module Parser = Xrpc_xquery.Parser
module Testmod = Xrpc_workloads.Testmod

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let has needle hay =
  let nl = String.length needle in
  let rec go i =
    i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let assert_has what needle hay =
  if not (has needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle hay

(* Every test leaves the global observability state as it found it. *)
let with_clean f =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.use_wall_clock ();
      Trace.reset ();
      Profile.set_capacity 10_000;
      Flight_recorder.configure ~capacity:128 ~slow:250. ~pinned:16 ();
      Flight_recorder.reset ())
    f

let fake_clock () =
  let t = ref 0. in
  Trace.set_clock (fun () -> !t);
  t

(* ------------------------------------------------------------------ *)
(* A minimal JSON well-formedness checker (RFC 8259 grammar, no
   semantics) so exporter tests fail on any broken quoting/commas.      *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else bad (Printf.sprintf "expected %c" c)
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
    else bad ("expected " ^ w)
  in
  let string_ () =
    expect '"';
    let rec go () =
      if !pos >= n then bad "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
            | Some 'u' ->
                incr pos;
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
                  | _ -> bad "bad \\u escape"
                done
            | _ -> bad "bad escape");
            go ()
        | c when Char.code c < 0x20 -> bad "control char in string"
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then bad "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | _ -> expect '}'
          in
          members ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | _ -> expect ']'
          in
          elements ()
    | Some '"' -> string_ ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> bad "expected a JSON value"
  in
  value ();
  skip_ws ();
  if !pos <> n then bad "trailing garbage"

let assert_json what s =
  match check_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON (%s):\n%s" what msg s

(* ------------------------------------------------------------------ *)
(* Metrics satellites: clamping, labels                                *)
(* ------------------------------------------------------------------ *)

let test_histogram_clamps_bad_durations () =
  Metrics.reset ();
  let h = Metrics.histogram "p.clamp_ms" in
  Metrics.observe h (-5.);
  Metrics.observe h Float.nan;
  Metrics.observe h 3.;
  check int_ "all three observations counted" 3 h.Metrics.n;
  check (Alcotest.float 1e-9) "negatives and NaN clamp to zero" 3. h.Metrics.sum;
  check bool_ "quantile stays finite" true
    (Float.is_finite (Metrics.quantile h 0.99))

let test_labeled_series_canonical () =
  check string_ "labels sorted by key" {|m{a="x",z="1"}|}
    (Metrics.with_labels "m" [ ("z", "1"); ("a", "x") ]);
  check string_ "same set, any order, same series"
    (Metrics.with_labels "m" [ ("a", "x"); ("z", "1") ])
    (Metrics.with_labels "m" [ ("z", "1"); ("a", "x") ]);
  check string_ "no labels, bare name" "m" (Metrics.with_labels "m" []);
  check string_ "quotes, backslashes, newlines escaped"
    "m{k=\"a\\\"b\\nc\\\\d\"}"
    (Metrics.with_labels "m" [ ("k", "a\"b\nc\\d") ]);
  check string_ "histogram suffix goes before the label set"
    {|lat_count{dest="y"}|}
    (Metrics.suffixed {|lat{dest="y"}|} "_count")

let test_labeled_series_in_text_export () =
  Metrics.reset ();
  Metrics.incr (Metrics.counter (Metrics.with_labels "p.req" [ ("dest", "y") ]));
  Metrics.incr_by
    (Metrics.counter (Metrics.with_labels "p.req" [ ("dest", "x") ]))
    2;
  let h = Metrics.histogram (Metrics.with_labels "p.lat_ms" [ ("dest", "y") ]) in
  Metrics.observe h 4.;
  let text = Metrics.to_text () in
  assert_has "x series" {|p.req{dest="x"} 2|} text;
  assert_has "y series" {|p.req{dest="y"} 1|} text;
  assert_has "histogram count series" {|p.lat_ms_count{dest="y"} 1|} text;
  (* series dump is sorted, so the export is diff-able run to run *)
  let ix = String.index text 'x' in
  ignore ix;
  let posx =
    match String.split_on_char '\n' text with
    | lines ->
        let rec find i = function
          | [] -> (-1, -1)
          | l :: rest ->
              if has {|p.req{dest="x"}|} l then (i, snd (find (i + 1) rest))
              else if has {|p.req{dest="y"}|} l then (fst (find (i + 1) rest), i)
              else find (i + 1) rest
        in
        find 0 lines
  in
  (match posx with
  | ix, iy when ix >= 0 && iy >= 0 ->
      check bool_ "x sorts before y" true (ix < iy)
  | _ -> Alcotest.fail "labeled series missing from text export");
  assert_json "metrics json export" (Metrics.to_json ())

(* ------------------------------------------------------------------ *)
(* Exporters over a hand-built span tree                               *)
(* ------------------------------------------------------------------ *)

let build_spans () =
  let t = fake_clock () in
  Trace.set_enabled true;
  Trace.with_span ~detail:"root d" "root" (fun () ->
      t := 1.;
      Trace.with_span "child" (fun () ->
          t := 2.;
          Trace.event ~detail:"ed" "tick";
          t := 3.);
      t := 10.);
  Trace.spans ()

let test_chrome_trace_export () =
  with_clean @@ fun () ->
  let spans = build_spans () in
  let json = Export.chrome_trace spans in
  assert_json "chrome trace" json;
  (* one complete event per span, one instant event per span event *)
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length json then acc
      else if String.sub json i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check int_ "two complete events" 2 (count "\"ph\":\"X\"");
  check int_ "one instant event" 1 (count "\"ph\":\"i\"");
  (* microsecond timestamps: child [1ms,3ms] nests inside root [0,10ms] *)
  assert_has "child start" "\"ts\":1000," json;
  assert_has "child duration" "\"dur\":2000," json;
  assert_has "root duration" "\"dur\":10000," json;
  assert_has "event timestamp" "\"ts\":2000," json;
  (* parentage is preserved in args, so the tree is reconstructable *)
  let root =
    List.find (fun s -> s.Trace.name = "root") spans
  and child = List.find (fun s -> s.Trace.name = "child") spans in
  assert_has "child points at root"
    (Printf.sprintf "\"parent\":\"%s\"" root.Trace.span_id)
    json;
  assert_has "detail preserved" "\"detail\":\"root d\"" json;
  check bool_ "no open spans flagged" false (has "\"open\":true" json);
  ignore child

let test_span_tree_json_export () =
  with_clean @@ fun () ->
  let spans = build_spans () in
  let json = Export.span_tree_json spans in
  assert_json "span tree json" json;
  assert_has "root node" "\"name\":\"root\"" json;
  assert_has "child nested" "\"children\":[{\"name\":\"child\"" json;
  assert_has "durations" "\"dur_ms\":2" json;
  assert_has "event list" "\"events\":[{\"name\":\"tick\"" json

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let rec_one ?error ~ms i =
  ignore
    (Flight_recorder.record ?error
       ~label:(Printf.sprintf "q%d" i)
       ~duration_ms:ms ~spans:[] ())

let test_flight_ring_eviction () =
  with_clean @@ fun () ->
  Flight_recorder.configure ~capacity:8 ~slow:1e9 ~pinned:4 ();
  Flight_recorder.reset ();
  for i = 1 to 20 do
    rec_one ~ms:(float_of_int i) i
  done;
  check int_ "all recordings counted" 20 (Flight_recorder.total_recorded ());
  let rs = Flight_recorder.recent () in
  check int_ "ring bounded" 8 (List.length rs);
  check int_ "newest first" 20 (List.hd rs).Flight_recorder.id;
  check int_ "oldest survivor" 13
    (List.nth rs 7).Flight_recorder.id;
  check bool_ "evicted entry unfindable" true (Flight_recorder.find 5 = None);
  check bool_ "live entry findable" true
    (match Flight_recorder.find 20 with
    | Some e -> e.Flight_recorder.label = "q20"
    | None -> false);
  check int_ "nothing crossed the slow bar" 0
    (List.length (Flight_recorder.pinned ()))

let test_flight_pinned_slow_queries () =
  with_clean @@ fun () ->
  Flight_recorder.configure ~capacity:4 ~slow:100. ~pinned:3 ();
  Flight_recorder.reset ();
  List.iteri
    (fun i ms -> rec_one ~ms (i + 1))
    [ 10.; 150.; 500.; 50.; 300.; 120.; 700. ];
  let ps = Flight_recorder.pinned () in
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "slowest first, bounded" [ 700.; 500.; 300. ]
    (List.map (fun e -> e.Flight_recorder.duration_ms) ps);
  (* the 500ms query (id 3) was evicted from the ring by fast traffic,
     but stays reachable through its pin *)
  let ring_ids =
    List.map (fun e -> e.Flight_recorder.id) (Flight_recorder.recent ())
  in
  check bool_ "slow query evicted from the ring" false (List.mem 3 ring_ids);
  check bool_ "…but still findable via the pin" true
    (match Flight_recorder.find 3 with
    | Some e -> e.Flight_recorder.duration_ms = 500.
    | None -> false);
  assert_has "text export lists pins" "pinned slow queries" (Flight_recorder.pinned_text ());
  assert_has "slow threshold shown" "100" (Flight_recorder.pinned_text ());
  assert_json "flight json export" (Flight_recorder.to_json ())

let test_flight_concurrent_writers () =
  with_clean @@ fun () ->
  Flight_recorder.configure ~capacity:32 ~slow:90. ~pinned:8 ();
  Flight_recorder.reset ();
  let per_thread = 50 and nthreads = 4 in
  let worker k () =
    for i = 1 to per_thread do
      rec_one ~ms:(float_of_int ((i + k) mod 100)) i
    done
  in
  let ts = List.init nthreads (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ts;
  check int_ "every record counted" (per_thread * nthreads)
    (Flight_recorder.total_recorded ());
  let rs = Flight_recorder.recent () in
  check int_ "ring exactly full" 32 (List.length rs);
  let ids = List.map (fun e -> e.Flight_recorder.id) rs in
  check int_ "no duplicate ids in the ring"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let ps = Flight_recorder.pinned () in
  check bool_ "pinned list bounded" true (List.length ps <= 8);
  List.iter
    (fun e ->
      if e.Flight_recorder.duration_ms < 90. then
        Alcotest.failf "pinned a fast query (%.0f ms)"
          e.Flight_recorder.duration_ms)
    ps;
  let rec sorted = function
    | a :: b :: rest ->
        a.Flight_recorder.duration_ms >= b.Flight_recorder.duration_ms
        && sorted (b :: rest)
    | _ -> true
  in
  check bool_ "pinned stays sorted under concurrency" true (sorted ps)

(* ------------------------------------------------------------------ *)
(* Profile collection                                                  *)
(* ------------------------------------------------------------------ *)

let test_profile_nodes_and_ops () =
  with_clean @@ fun () ->
  let t = fake_clock () in
  check bool_ "profiling off by default" false (Profile.enabled ());
  let r, p =
    Profile.profiled ~label:"unit" (fun () ->
        Profile.with_node "a" (fun () ->
            t := 2.;
            Profile.with_node ~detail:"d" "b" (fun () ->
                t := 5.;
                Profile.set_rows 7;
                Profile.record_op "select" ~rows_in:10 ~rows_out:7 1.5;
                Profile.record_op "select" ~rows_in:4 ~rows_out:2 0.5));
        42)
  in
  check int_ "thunk result returned" 42 r;
  check bool_ "profiling restored off" false (Profile.enabled ());
  check (Alcotest.float 1e-9) "total on the injected clock" 5.
    (Profile.total_ms p);
  check int_ "two plan nodes" 2 (Profile.node_count p);
  (match Profile.nodes p with
  | [ a; b ] ->
      check int_ "stable pre-order ids" 1 a.Profile.id;
      check string_ "names" "b" b.Profile.name;
      check bool_ "parentage" true (b.Profile.parent = Some a.Profile.id);
      check int_ "cardinality recorded" 7 b.Profile.rows_out;
      check (Alcotest.float 1e-9) "inclusive time of b" 3. b.Profile.incl_ms;
      (match b.Profile.ops with
      | [ ("select", os) ] ->
          check int_ "op calls merged" 2 os.Profile.os_calls;
          check int_ "rows in summed" 14 os.Profile.os_rows_in;
          check int_ "rows out summed" 9 os.Profile.os_rows_out;
          check (Alcotest.float 1e-9) "op time summed" 2. os.Profile.os_ms
      | _ -> Alcotest.fail "expected one merged select op")
  | l -> Alcotest.failf "expected 2 nodes, got %d" (List.length l));
  let text = Profile.render p in
  assert_has "label" "profile unit" text;
  assert_has "node line" "#2 b (d)" text;
  assert_has "cardinality" "rows=7" text;
  assert_has "merged op" "select x2" text;
  assert_json "profile json" (Profile.to_json p)

let test_profile_node_capacity () =
  with_clean @@ fun () ->
  ignore (fake_clock ());
  Profile.set_capacity 3;
  let (), p =
    Profile.profiled (fun () ->
        for _ = 1 to 5 do
          Profile.with_node "n" (fun () -> ())
        done)
  in
  check int_ "nodes capped" 3 (Profile.node_count p);
  check int_ "overflow counted" 2 (Profile.dropped_count p)

let test_profile_off_records_nothing () =
  with_clean @@ fun () ->
  (* outside [profiled] every hook is a single flag test and a return *)
  check int_ "with_node passes through" 9
    (Profile.with_node "x" (fun () -> 9));
  Profile.record_op "select" ~rows_in:1 ~rows_out:1 1.;
  Profile.note_send ~dest:"xrpc://y" ~bytes:10;
  Profile.set_rows 5;
  (* a later profile must not see any of it *)
  let (), p = Profile.profiled (fun () -> ()) in
  check int_ "no leaked nodes" 0 (Profile.node_count p);
  check int_ "no leaked dests" 0 (List.length (Profile.dests p))

let iii rows =
  Table.make [ "iter"; "pos"; "item" ]
    (List.map
       (fun (i, pos, v) ->
         [ Table.Int i; Table.Int pos; Table.Item (Xdm.str v) ])
       rows)

let test_profile_captures_kernel_ops () =
  with_clean @@ fun () ->
  let t = iii [ (1, 1, "a"); (2, 1, "a"); (1, 1, "a") ] in
  let (), p =
    Profile.profiled (fun () ->
        Profile.with_node "plan" (fun () ->
            ignore (Ops.distinct t);
            ignore (Ops.select_eq t "item" (Table.Item (Xdm.str "a")))))
  in
  match Profile.nodes p with
  | [ n ] ->
      let op name =
        match List.assoc_opt name n.Profile.ops with
        | Some os -> os
        | None ->
            Alcotest.failf "kernel op %s missing (have: %s)" name
              (String.concat ", " (List.map fst n.Profile.ops))
      in
      check int_ "distinct rows in" 3 (op "distinct").Profile.os_rows_in;
      check int_ "distinct rows out" 2 (op "distinct").Profile.os_rows_out;
      check int_ "select_eq rows in" 3 (op "select_eq").Profile.os_rows_in;
      check int_ "select_eq rows out" 3 (op "select_eq").Profile.os_rows_out
  | l -> Alcotest.failf "expected the one plan node, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)
(* ------------------------------------------------------------------ *)

let q_two_peers =
  {|import module namespace t="test" at "http://x.example.org/test.xq";
for $d in ("xrpc://y", "xrpc://z")
return execute at {$d} {t:ping(1)}|}

let test_explain_plan () =
  let prog = Parser.parse_prog q_two_peers in
  let body =
    match prog.Xrpc_xquery.Ast.body with
    | Some e -> e
    | None -> Alcotest.fail "query has no body"
  in
  let plan = Looplift.explain body in
  assert_has "numbered nodes" "#1 " plan;
  assert_has "flwor node" "flwor" plan;
  assert_has "for clause annotated" "for $d" plan;
  assert_has "execute node" "execute_at" plan;
  assert_has "Bulk RPC translation named" "Bulk RPC" plan;
  (* numbering is deterministic: same query, same plan text *)
  check string_ "stable rendering" plan (Looplift.explain body)

(* ------------------------------------------------------------------ *)
(* serverProfile attribute round-trip                                     *)
(* ------------------------------------------------------------------ *)

let ping_request =
  Message.Request
    {
      Message.module_uri = "test";
      location = "http://x.example.org/test.xq";
      method_ = "ping";
      arity = 1;
      updating = false;
      fragments = false;
      query_id = None;
      idem_key = None; cache_ok = true;
      calls = [ [ [ Xdm.int 1 ] ] ];
    }

let test_server_profile_roundtrip () =
  with_clean @@ fun () ->
  let resp =
    Message.Response
      {
        Message.resp_module = "test";
        resp_method = "ping";
        results = [ [ Xdm.int 1 ] ];
        cached = false;
        db_version = None;
        peers = [];
      }
  in
  let s =
    Message.to_string ~server_profile:[ ("parse", 0.5); ("exec", 1.25) ] resp
  in
  (match Message.of_string_profiled s with
  | Message.Response _, Some phases ->
      check
        (Alcotest.list (Alcotest.pair string_ (Alcotest.float 1e-9)))
        "phases round-trip in order"
        [ ("parse", 0.5); ("exec", 1.25) ]
        phases
  | _, None -> Alcotest.fail "serverProfile attribute lost"
  | _ -> Alcotest.fail "bad parse");
  (* a plain response carries no header *)
  (match Message.of_string_profiled (Message.to_string resp) with
  | _, None -> ()
  | _, Some _ -> Alcotest.fail "spurious serverProfile attribute")

let test_profile_flag_stamped_on_requests () =
  with_clean @@ fun () ->
  (* profiling off: no flag *)
  let _, _, flag = Message.of_string_server (Message.to_string ping_request) in
  check bool_ "no flag when off" false flag;
  (* inside a profiled run every serialized request asks the server to
     measure its phases *)
  let (), _ =
    Profile.profiled (fun () ->
        let _, _, flag =
          Message.of_string_server (Message.to_string ping_request)
        in
        check bool_ "flag when profiling" true flag)
  in
  ()

(* ------------------------------------------------------------------ *)
(* End to end: a profiled distributed query over two simulated peers   *)
(* ------------------------------------------------------------------ *)

let sim_config = { Simnet.default_config with Simnet.charge_cpu = false }

let test_cluster () =
  let cluster = Cluster.create ~config:sim_config ~names:[ "x"; "y"; "z" ] () in
  Cluster.register_module_everywhere cluster ~uri:Testmod.module_ns
    ~location:Testmod.module_at Testmod.test_module;
  cluster

let test_distributed_profile () =
  with_clean @@ fun () ->
  let cluster = test_cluster () in
  let r, p =
    Cluster.profiled cluster ~label:"q2" (fun () ->
        Peer.query_seq (Cluster.peer cluster "x") q_two_peers)
  in
  check string_ "query answered" "1 1" (Xdm.to_display r);
  check bool_ "total recorded" true (not (Float.is_nan (Profile.total_ms p)));
  (* the Bulk RPC dispatch shows up as a plan node *)
  check bool_ "bulk dispatch node present" true
    (List.exists (fun n -> n.Profile.name = "bulkrpc") (Profile.nodes p));
  (* per-destination accounting: both peers, real bytes both ways, one
     logical call each, and the remote side's phase breakdown *)
  let ds = Profile.dests p in
  check
    (Alcotest.list string_)
    "both destinations accounted" [ "xrpc://y"; "xrpc://z" ] (List.map fst ds);
  List.iter
    (fun (dest, d) ->
      check bool_ (dest ^ " sent a message") true (d.Profile.d_msgs >= 1);
      check int_ (dest ^ " one logical call") 1 d.Profile.d_calls;
      check bool_ (dest ^ " bytes out") true (d.Profile.d_bytes_out > 0);
      check bool_ (dest ^ " bytes in") true (d.Profile.d_bytes_in > 0);
      let remote = List.map fst d.Profile.d_remote in
      List.iter
        (fun ph ->
          if not (List.mem ph remote) then
            Alcotest.failf "%s remote phase %s missing (have: %s)" dest ph
              (String.concat ", " remote))
        [ "parse"; "compile"; "exec" ])
    ds;
  let text = Profile.render p in
  assert_has "label rendered" "profile q2" text;
  assert_has "destination section" "destinations:" text;
  assert_has "remote breakdown rendered" "remote:" text;
  assert_json "profile json export" (Profile.to_json p)

let test_call_profiled () =
  with_clean @@ fun () ->
  let cluster = test_cluster () in
  let r, p =
    Client.call_profiled (Cluster.client cluster) ~dest:"xrpc://y"
      ~module_uri:Testmod.module_ns ~location:Testmod.module_at ~fn:"ping"
      [ [ Xdm.int 7 ] ]
  in
  check string_ "result" "7" (Xdm.to_display r);
  check string_ "label names call and destination" "ping @ xrpc://y"
    (Profile.label p);
  match Profile.dests p with
  | [ ("xrpc://y", d) ] ->
      check int_ "one message" 1 d.Profile.d_msgs;
      check int_ "one call" 1 d.Profile.d_calls;
      check bool_ "bytes out" true (d.Profile.d_bytes_out > 0);
      check bool_ "bytes in" true (d.Profile.d_bytes_in > 0);
      check bool_ "remote exec phase" true
        (List.mem_assoc "exec" d.Profile.d_remote)
  | ds -> Alcotest.failf "expected one destination, got %d" (List.length ds)

let test_flight_records_distributed_query () =
  with_clean @@ fun () ->
  Flight_recorder.reset ();
  Flight_recorder.configure ~capacity:32 ~slow:1e9 ~pinned:4 ();
  let cluster = test_cluster () in
  Cluster.enable_tracing cluster;
  ignore (Peer.query_seq (Cluster.peer cluster "x") q_two_peers);
  Cluster.disable_tracing ();
  (* both remote peers' request handling plus the originating query are
     on the record, without anyone having asked beforehand *)
  check bool_ "at least three entries" true
    (Flight_recorder.total_recorded () >= 3);
  let rs = Flight_recorder.recent () in
  let by_label pre =
    List.find_opt
      (fun e ->
        String.length e.Flight_recorder.label >= String.length pre
        && String.sub e.Flight_recorder.label 0 (String.length pre) = pre)
      rs
  in
  (match by_label "import module" with
  | Some e ->
      check bool_ "query entry carries spans" true (e.Flight_recorder.spans <> []);
      check bool_ "per-phase rollup present" true
        (List.mem_assoc "peer.handle"
           (List.map
              (fun (n, c, ms) -> (n, (c, ms)))
              e.Flight_recorder.phases));
      assert_has "signature captured" "query" e.Flight_recorder.signature;
      (* the captured slice exports as a valid Chrome trace *)
      assert_json "per-request chrome trace"
        (Export.chrome_trace e.Flight_recorder.spans)
  | None -> Alcotest.fail "originating query not recorded");
  (match by_label "test:ping" with
  | Some e ->
      check bool_ "server-side phases recorded" true
        (List.exists
           (fun (n, _, _) -> n = "peer.exec" || n = "eval.apply")
           e.Flight_recorder.phases)
  | None ->
      Alcotest.failf "remote handling not recorded (labels: %s)"
        (String.concat " | "
           (List.map (fun e -> e.Flight_recorder.label) rs)));
  assert_has "text export renders" "flight recorder:" (Flight_recorder.to_text ())

let () =
  Alcotest.run "profile"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram clamps bad durations" `Quick
            test_histogram_clamps_bad_durations;
          Alcotest.test_case "canonical labeled series" `Quick
            test_labeled_series_canonical;
          Alcotest.test_case "labels in text export" `Quick
            test_labeled_series_in_text_export;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace events" `Quick
            test_chrome_trace_export;
          Alcotest.test_case "span tree json" `Quick test_span_tree_json_export;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring eviction" `Quick test_flight_ring_eviction;
          Alcotest.test_case "pinned slow queries" `Quick
            test_flight_pinned_slow_queries;
          Alcotest.test_case "concurrent writers" `Quick
            test_flight_concurrent_writers;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nodes, rows and merged ops" `Quick
            test_profile_nodes_and_ops;
          Alcotest.test_case "bounded plan nodes" `Quick
            test_profile_node_capacity;
          Alcotest.test_case "off records nothing" `Quick
            test_profile_off_records_nothing;
          Alcotest.test_case "kernel ops attributed" `Quick
            test_profile_captures_kernel_ops;
        ] );
      ( "explain",
        [ Alcotest.test_case "static plan rendering" `Quick test_explain_plan ]
      );
      ( "propagation",
        [
          Alcotest.test_case "serverProfile round-trip" `Quick
            test_server_profile_roundtrip;
          Alcotest.test_case "profile flag on requests" `Quick
            test_profile_flag_stamped_on_requests;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "profiled two-peer query" `Quick
            test_distributed_profile;
          Alcotest.test_case "call_profiled" `Quick test_call_profiled;
          Alcotest.test_case "flight recorder sees the query" `Quick
            test_flight_records_distributed_query;
        ] );
    ]
