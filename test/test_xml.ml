(* Unit + property tests for the XML/XDM substrate (lib/xml). *)

open Xrpc_xml

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Qname                                                               *)
(* ------------------------------------------------------------------ *)

let test_qname_basics () =
  let q = Qname.make ~prefix:"f" ~uri:"films" "filmsByActor" in
  check string_ "to_string" "f:filmsByActor" (Qname.to_string q);
  check string_ "expanded" "{films}filmsByActor" (Qname.expanded q);
  let q2 = Qname.make ~prefix:"g" ~uri:"films" "filmsByActor" in
  check bool_ "equal ignores prefix" true (Qname.equal q q2);
  check bool_ "hash agrees" true (Qname.hash q = Qname.hash q2)

let test_qname_split () =
  check (Alcotest.pair string_ string_) "split prefixed" ("a", "b")
    (Qname.split "a:b");
  check (Alcotest.pair string_ string_) "split bare" ("", "b") (Qname.split "b")

(* ------------------------------------------------------------------ *)
(* Xs atomic values                                                    *)
(* ------------------------------------------------------------------ *)

let test_xs_lexical () =
  check string_ "int" "42" (Xs.to_string (Xs.Integer 42));
  check string_ "double int" "3" (Xs.to_string (Xs.Double 3.));
  check string_ "double frac" "3.1" (Xs.to_string (Xs.Double 3.1));
  check string_ "bool" "true" (Xs.to_string (Xs.Boolean true));
  check string_ "NaN" "NaN" (Xs.to_string (Xs.Double Float.nan));
  check string_ "INF" "INF" (Xs.to_string (Xs.Double Float.infinity))

let test_xs_parse () =
  check bool_ "int roundtrip" true
    (Xs.of_string Xs.TInteger " 17 " = Xs.Integer 17);
  check bool_ "bool 1" true (Xs.of_string Xs.TBoolean "1" = Xs.Boolean true);
  check bool_ "double INF" true
    (Xs.of_string Xs.TDouble "-INF" = Xs.Double Float.neg_infinity);
  Alcotest.check_raises "bad int" (Xs.Type_error "cannot cast \"xyz\" to xs:integer")
    (fun () -> ignore (Xs.of_string Xs.TInteger "xyz"))

let test_xs_arith_promotion () =
  check bool_ "int+int=int" true
    (Xs.arith `Add (Xs.Integer 2) (Xs.Integer 3) = Xs.Integer 5);
  check bool_ "int+double=double" true
    (Xs.arith `Add (Xs.Integer 2) (Xs.Double 3.5) = Xs.Double 5.5);
  check bool_ "int div int = decimal" true
    (Xs.arith `Div (Xs.Integer 7) (Xs.Integer 2) = Xs.Decimal 3.5);
  check bool_ "idiv truncates" true
    (Xs.arith `Idiv (Xs.Integer 7) (Xs.Integer 2) = Xs.Integer 3);
  check bool_ "mod" true (Xs.arith `Mod (Xs.Integer 7) (Xs.Integer 2) = Xs.Integer 1);
  Alcotest.check_raises "div by zero"
    (Xs.Type_error "division by zero") (fun () ->
      ignore (Xs.arith `Div (Xs.Integer 1) (Xs.Integer 0)))

let test_xs_compare () =
  check bool_ "numeric vs untyped" true
    (Xs.compare_values (Xs.Integer 2) (Xs.Untyped "2") = 0);
  check bool_ "string order" true
    (Xs.compare_values (Xs.String "a") (Xs.String "b") < 0);
  check bool_ "ebv empty string" false (Xs.ebv (Xs.String ""));
  check bool_ "ebv zero" false (Xs.ebv (Xs.Integer 0));
  check bool_ "ebv NaN" false (Xs.ebv (Xs.Double Float.nan))

let test_xs_cast () =
  check bool_ "string->int" true
    (Xs.cast (Xs.String "12") Xs.TInteger = Xs.Integer 12);
  check bool_ "double->int truncates" true
    (Xs.cast (Xs.Double 3.9) Xs.TInteger = Xs.Integer 3);
  check bool_ "bool->int" true (Xs.cast (Xs.Boolean true) Xs.TInteger = Xs.Integer 1);
  check bool_ "int->string" true (Xs.cast (Xs.Integer 5) Xs.TString = Xs.String "5")

(* ------------------------------------------------------------------ *)
(* Parser / serializer                                                 *)
(* ------------------------------------------------------------------ *)

let parse = Xml_parse.document

let test_parse_basic () =
  match parse "<a x=\"1\"><b>t</b><c/></a>" with
  | Tree.Document [ Tree.Element { name; attrs; children } ] ->
      check string_ "name" "a" name.Qname.local;
      check int_ "attrs" 1 (List.length attrs);
      check int_ "children" 2 (List.length children)
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_entities () =
  let t = parse "<a>&lt;&amp;&gt;&#65;&#x42;</a>" in
  check string_ "entities" "<&>AB" (Tree.string_value t)

let test_parse_cdata () =
  let t = parse "<a><![CDATA[<not-a-tag>&amp;]]></a>" in
  check string_ "cdata" "<not-a-tag>&amp;" (Tree.string_value t)

let test_parse_namespaces () =
  let t =
    parse
      "<x:a xmlns:x=\"urn:one\"><b xmlns=\"urn:two\"/><x:c/></x:a>"
  in
  match t with
  | Tree.Document [ Tree.Element { name; children; _ } ] ->
      check string_ "outer uri" "urn:one" name.Qname.uri;
      (match children with
      | [ Tree.Element b; Tree.Element c ] ->
          check string_ "default ns" "urn:two" b.name.Qname.uri;
          check string_ "inherited prefix" "urn:one" c.name.Qname.uri
      | _ -> Alcotest.fail "children shape")
  | _ -> Alcotest.fail "document shape"

let test_parse_comments_pis () =
  match parse "<?xml version=\"1.0\"?><!-- top --><a><?target data?><!--in--></a>" with
  | Tree.Document [ Tree.Element { children; _ } ] ->
      check int_ "kept pi+comment" 2 (List.length children)
  | _ -> Alcotest.fail "shape"

let test_parse_doctype_skipped () =
  match parse "<!DOCTYPE html><a>ok</a>" with
  | Tree.Document [ e ] -> check string_ "value" "ok" (Tree.string_value e)
  | _ -> Alcotest.fail "shape"

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Xml_parse.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "<a><b></a>";
  fails "<a";
  fails "<a>&unknown;</a>";
  fails "text only"

let test_serialize_escaping () =
  let t = Tree.elem (Qname.make "a") ~attrs:[ Tree.attr (Qname.make "x") "a\"<b" ]
      [ Tree.Text "1 < 2 & 3" ] in
  check string_ "escaped" "<a x=\"a&quot;&lt;b\">1 &lt; 2 &amp; 3</a>"
    (Serialize.to_string t)

let test_roundtrip_preserves_structure () =
  let src =
    "<films><film genre=\"action\"><name>The Rock</name><actor>Sean \
     Connery</actor></film><!--note--><film><name>Goldfinger</name></film></films>"
  in
  let t1 = parse src in
  let t2 = parse (Serialize.to_string t1) in
  check bool_ "stable" true (Tree.equal t1 t2)

(* ------------------------------------------------------------------ *)
(* Store: shredding and axes                                           *)
(* ------------------------------------------------------------------ *)

let film_store () =
  Store.shred ~uri:"filmDB.xml"
    (parse Xrpc_workloads.Filmdb.film_db_xml)

let test_store_counts () =
  let s = film_store () in
  check int_ "node count" (Tree.node_count s.Store.tree) (Store.node_count s)

let test_store_children_descendants () =
  let s = film_store () in
  let root = Store.root s in
  let films =
    match Store.children root with [ f ] -> f | _ -> Alcotest.fail "one child"
  in
  check int_ "three films" 3 (List.length (Store.children films));
  (* descendants of <films>: 3 film + 6 name/actor + 6 text *)
  check int_ "descendants" 15 (List.length (Store.descendants films))

let test_store_parent_ancestors () =
  let s = film_store () in
  let films = List.hd (Store.children (Store.root s)) in
  let film1 = List.hd (Store.children films) in
  (match Store.parent film1 with
  | Some p -> check bool_ "parent is films" true (Store.equal_nodes p films)
  | None -> Alcotest.fail "no parent");
  check int_ "ancestors" 2 (List.length (Store.ancestors film1))

let test_store_siblings_following () =
  let s = film_store () in
  let films = List.hd (Store.children (Store.root s)) in
  match Store.children films with
  | [ f1; f2; f3 ] ->
      check int_ "following siblings" 2 (List.length (Store.following_siblings f1));
      check int_ "preceding siblings" 2 (List.length (Store.preceding_siblings f3));
      check bool_ "following excludes descendants" true
        (List.for_all
           (fun n -> n.Store.pre > f2.Store.pre + s.Store.size.(f2.Store.pre))
           (Store.following f2));
      check bool_ "preceding excludes ancestors" true
        (not
           (List.exists (fun n -> Store.equal_nodes n films) (Store.preceding f2)))
  | _ -> Alcotest.fail "three films"

let test_store_attributes () =
  let s = Store.shred (parse "<a x=\"1\" y=\"2\"><b z=\"3\"/></a>") in
  let a = List.hd (Store.children (Store.root s)) in
  check int_ "a attrs" 2 (List.length (Store.attributes a));
  (* children must not include attributes *)
  check int_ "a children" 1 (List.length (Store.children a));
  let at = List.hd (Store.attributes a) in
  check string_ "attr value" "1" (Store.string_value at)

let test_store_string_value () =
  let s = film_store () in
  let films = List.hd (Store.children (Store.root s)) in
  let f1 = List.hd (Store.children films) in
  check string_ "concat text" "The RockSean Connery" (Store.string_value f1)

(* Regression: Store.preceding and Store.string_value must stay linear in
   the scanned range.  Correctness is checked against naive recomputations
   on a deep document (the worst case for the old List.mem ancestor test),
   and a growth-ratio check locks in the asymptotics: 8x the nodes must not
   cost more than ~8x the time (quadratic behavior would cost ~64x). *)

let deep_chain depth =
  (* [depth] nested elements, each with a text node before the nested child:
     preceding of the innermost element is the depth-1 text nodes, and its
     ancestor set is the depth-1 enclosing elements *)
  let rec go d =
    if d = 0 then Tree.Text "x"
    else
      Tree.Element
        { name = Qname.make "e"; attrs = []; children = [ Tree.Text "t"; go (d - 1) ] }
  in
  Store.shred (go depth)

let deepest_elem s =
  (* last Elem in preorder: the innermost of the chain *)
  let n = Store.node_count s - 1 in
  let rec find pre =
    if pre < 0 then Alcotest.fail "no elem"
    else
      let node = { Store.store = s; pre } in
      if Store.kind node = Store.Elem then node else find (pre - 1)
  in
  find n

let test_preceding_deep_correct () =
  let s = deep_chain 200 in
  let n = deepest_elem s in
  (* on a pure chain every node before [n] is an ancestor or its text;
     preceding must contain exactly the non-ancestor, non-attribute nodes *)
  let naive =
    List.filter
      (fun pre ->
        s.Store.kind.(pre) <> Store.Attr
        && not
             (List.exists
                (fun a -> a.Store.pre = pre)
                (Store.ancestors n)))
      (List.init n.Store.pre (fun i -> i))
  in
  check (Alcotest.list int_) "preceding = naive"
    naive
    (List.map (fun p -> p.Store.pre) (Store.preceding n))

let time_min_ms reps f =
  (* best of 3 trials of [reps] runs — robust against scheduler noise *)
  let trial () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  let a = trial () and b = trial () and c = trial () in
  min a (min b c)

let test_preceding_linear () =
  let small = deep_chain 1000 and big = deep_chain 8000 in
  let ns = deepest_elem small and nb = deepest_elem big in
  check int_ "small preceding size" 999 (List.length (Store.preceding ns));
  check int_ "big preceding size" 7999 (List.length (Store.preceding nb));
  let t_small = time_min_ms 20 (fun () -> Store.preceding ns) in
  let t_big = time_min_ms 20 (fun () -> Store.preceding nb) in
  (* 8x nodes: linear ≈ 8x (generous bound 24x); the old O(n·depth) scan
     would be ≈ 64x *)
  check bool_
    (Printf.sprintf "preceding growth ratio %.1f < 24" (t_big /. t_small))
    true
    (t_big < 24. *. (max t_small 0.001))

let test_string_value_linear () =
  let wide k =
    Store.shred
      (Tree.Element
         {
           name = Qname.make "doc";
           attrs = [];
           children = List.init k (fun _ -> Tree.Text "ab");
         })
  in
  let small = wide 1000 and big = wide 8000 in
  check int_ "small length" 2000
    (String.length (Store.string_value (Store.root small)));
  check int_ "big length" 16000
    (String.length (Store.string_value (Store.root big)));
  let t_small = time_min_ms 50 (fun () -> Store.string_value (Store.root small)) in
  let t_big = time_min_ms 50 (fun () -> Store.string_value (Store.root big)) in
  check bool_
    (Printf.sprintf "string_value growth ratio %.1f < 24" (t_big /. t_small))
    true
    (t_big < 24. *. (max t_small 0.001))

let test_store_to_tree_roundtrip () =
  let tree = parse Xrpc_workloads.Filmdb.film_db_xml in
  let s = Store.shred tree in
  check bool_ "roundtrip" true (Tree.equal tree (Store.to_tree (Store.root s)))

let test_doc_order_across_stores () =
  let s1 = Store.shred (parse "<a/>") in
  let s2 = Store.shred (parse "<b/>") in
  check bool_ "earlier store first" true
    (Store.compare_nodes (Store.root s1) (Store.root s2) < 0)

(* ------------------------------------------------------------------ *)
(* Xdm                                                                 *)
(* ------------------------------------------------------------------ *)

let test_xdm_ebv () =
  check bool_ "empty" false (Xdm.ebv []);
  check bool_ "node" true
    (Xdm.ebv [ Xdm.Node (Store.root (film_store ())) ]);
  check bool_ "false atom" false (Xdm.ebv [ Xdm.bool false ]);
  Alcotest.check_raises "multi-atom ebv"
    (Xdm.Dynamic_error "FORG0006: invalid argument to effective boolean value")
    (fun () -> ignore (Xdm.ebv [ Xdm.int 1; Xdm.int 2 ]))

let test_xdm_dedup () =
  let s = film_store () in
  let films = List.hd (Store.children (Store.root s)) in
  let kids = Store.children films in
  let doubled = kids @ List.rev kids in
  check int_ "dedup" 3 (List.length (Xdm.doc_order_dedup doubled));
  check bool_ "sorted" true
    (Xdm.doc_order_dedup doubled = kids)

let test_xdm_deep_equal () =
  let s1 = Store.shred (parse "<a><b>x</b></a>") in
  let s2 = Store.shred (parse "<a><b>x</b></a>") in
  let s3 = Store.shred (parse "<a><b>y</b></a>") in
  check bool_ "equal trees, different identity" true
    (Xdm.deep_equal [ Xdm.Node (Store.root s1) ] [ Xdm.Node (Store.root s2) ]);
  check bool_ "different trees" false
    (Xdm.deep_equal [ Xdm.Node (Store.root s1) ] [ Xdm.Node (Store.root s3) ])

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let gen_name =
  QCheck.Gen.(oneofl [ "a"; "b"; "item"; "film"; "name"; "x1"; "long-name" ])

let gen_text =
  QCheck.Gen.(
    map
      (fun ws -> String.concat " " ws)
      (list_size (int_range 1 4)
         (oneofl [ "alpha"; "<"; "&"; "beta"; "\"q\""; "42"; "]]>" ])))

let gen_tree =
  QCheck.Gen.(
    sized_size (int_range 0 5) (fix (fun self n ->
        if n = 0 then map (fun s -> Tree.Text s) gen_text
        else
          frequency
            [
              (2, map (fun s -> Tree.Text s) gen_text);
              (1, map (fun s -> Tree.Comment s) gen_text);
              ( 4,
                map3
                  (fun name attrs children ->
                    Tree.Element
                      {
                        name = Qname.make name;
                        attrs =
                          List.mapi
                            (fun i v ->
                              Tree.attr (Qname.make (Printf.sprintf "a%d" i)) v)
                            attrs;
                        children;
                      })
                  gen_name
                  (list_size (int_range 0 2) gen_text)
                  (list_size (int_range 0 3) (self (n / 2))) );
            ])))

let arbitrary_element =
  QCheck.make
    ~print:(fun t -> Serialize.to_string t)
    QCheck.Gen.(
      map3
        (fun name attrs children ->
          Tree.Element
            {
              name = Qname.make name;
              attrs =
                List.mapi
                  (fun i v -> Tree.attr (Qname.make (Printf.sprintf "a%d" i)) v)
                  attrs;
              children;
            })
        gen_name
        (list_size (int_range 0 3) gen_text)
        (list_size (int_range 0 4) gen_tree))

(* adjacent text nodes legitimately merge on reparse; normalize first *)
let rec normalize = function
  | Tree.Element { name; attrs; children } ->
      Tree.Element { name; attrs; children = normalize_children children }
  | Tree.Document cs -> Tree.Document (normalize_children cs)
  | t -> t

and normalize_children cs =
  let rec go = function
    | Tree.Text a :: Tree.Text b :: rest -> go (Tree.Text (a ^ b) :: rest)
    | c :: rest -> normalize c :: go rest
    | [] -> []
  in
  go cs

(* parse (serialize t) == t for trees without ignorable whitespace *)
let prop_serialize_parse_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrip" ~count:200
    arbitrary_element (fun t ->
      match Xml_parse.document ~preserve_space:true (Serialize.to_string t) with
      | Tree.Document [ t' ] -> Tree.equal (normalize t) t'
      | _ -> false)

(* shredding preserves the tree *)
let prop_shred_to_tree =
  QCheck.Test.make ~name:"shred/to_tree roundtrip" ~count:200 arbitrary_element
    (fun t -> Tree.equal t (Store.to_tree (Store.root (Store.shred t))))

(* parent of every child is the node itself; descendants count = size minus
   attributes *)
let prop_axes_consistent =
  QCheck.Test.make ~name:"children/parent consistency" ~count:200
    arbitrary_element (fun t ->
      let s = Store.shred t in
      let rec walk n =
        List.for_all
          (fun c ->
            (match Store.parent c with
            | Some p -> Store.equal_nodes p n
            | None -> false)
            && walk c)
          (Store.children n)
      in
      walk (Store.root s))

(* document order = preorder: descendants are contiguous *)
let prop_descendants_contiguous =
  QCheck.Test.make ~name:"descendants contiguous" ~count:200 arbitrary_element
    (fun t ->
      let s = Store.shred t in
      let rec walk n =
        let ds = Store.descendants n in
        List.for_all
          (fun d -> d.Store.pre > n.Store.pre
                    && d.Store.pre <= n.Store.pre + s.Store.size.(n.Store.pre))
          ds
        && List.for_all walk (Store.children n)
      in
      walk (Store.root s))

let () =
  Alcotest.run "xml"
    [
      ( "qname",
        [
          Alcotest.test_case "basics" `Quick test_qname_basics;
          Alcotest.test_case "split" `Quick test_qname_split;
        ] );
      ( "xs",
        [
          Alcotest.test_case "lexical" `Quick test_xs_lexical;
          Alcotest.test_case "parse" `Quick test_xs_parse;
          Alcotest.test_case "arith promotion" `Quick test_xs_arith_promotion;
          Alcotest.test_case "compare" `Quick test_xs_compare;
          Alcotest.test_case "cast" `Quick test_xs_cast;
        ] );
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "namespaces" `Quick test_parse_namespaces;
          Alcotest.test_case "comments and PIs" `Quick test_parse_comments_pis;
          Alcotest.test_case "doctype skipped" `Quick test_parse_doctype_skipped;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "escaping" `Quick test_serialize_escaping;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_preserves_structure;
        ] );
      ( "store",
        [
          Alcotest.test_case "counts" `Quick test_store_counts;
          Alcotest.test_case "children/descendants" `Quick
            test_store_children_descendants;
          Alcotest.test_case "parent/ancestors" `Quick test_store_parent_ancestors;
          Alcotest.test_case "siblings/following" `Quick
            test_store_siblings_following;
          Alcotest.test_case "attributes" `Quick test_store_attributes;
          Alcotest.test_case "string value" `Quick test_store_string_value;
          Alcotest.test_case "preceding deep correct" `Quick
            test_preceding_deep_correct;
          Alcotest.test_case "preceding linear" `Slow test_preceding_linear;
          Alcotest.test_case "string_value linear" `Slow
            test_string_value_linear;
          Alcotest.test_case "to_tree roundtrip" `Quick test_store_to_tree_roundtrip;
          Alcotest.test_case "doc order across stores" `Quick
            test_doc_order_across_stores;
        ] );
      ( "xdm",
        [
          Alcotest.test_case "ebv" `Quick test_xdm_ebv;
          Alcotest.test_case "dedup" `Quick test_xdm_dedup;
          Alcotest.test_case "deep equal" `Quick test_xdm_deep_equal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_serialize_parse_roundtrip;
            prop_shred_to_tree;
            prop_axes_consistent;
            prop_descendants_contiguous;
          ] );
    ]
