lib/core/cluster.ml: List Printf String Xrpc_net Xrpc_peer
