lib/core/xrpc.ml: Cluster Strategies Xrpc_net Xrpc_peer Xrpc_soap Xrpc_xml
