lib/core/strategies.ml: Printf
