(** Versioned XML document database.

    Documents are immutable shredded stores, so a database {e version} is
    just a map from document name to store, and taking a snapshot is free —
    the moral equivalent of MonetDB/XQuery's shadow-paging snapshots that
    the paper relies on for repeatable-read isolation (§2.2).  Committing a
    pending update list produces a fresh version; older snapshots held by
    in-flight queries keep reading their own version. *)

open Xrpc_xml
module Update = Xrpc_xquery.Update

module Doc_map = Map.Make (String)

type version = { docs : Store.t Doc_map.t; version_no : int }

type t = {
  mutable current : version;
  mutable history : (float * version) list;
      (** recent versions with their commit timestamps, newest first —
          enables the distributed snapshot isolation of §2.2 ("all peers
          use the same timestamp t_q") *)
  clock : unit -> float;
}

exception No_such_document of string

let history_limit = 128

let create ?(clock = Unix.gettimeofday) () =
  {
    current = { docs = Doc_map.empty; version_no = 0 };
    history = [];
    clock;
  }

let remember db =
  db.history <- (db.clock (), db.current) :: db.history;
  if List.length db.history > history_limit then
    db.history <-
      List.filteri (fun i _ -> i < history_limit) db.history

(** [add_doc db name tree] loads (or replaces) a document. *)
let add_doc db name tree =
  let store = Store.shred ~uri:name tree in
  db.current <-
    {
      docs = Doc_map.add name store db.current.docs;
      version_no = db.current.version_no + 1;
    };
  remember db

let add_doc_xml db name xml = add_doc db name (Xml_parse.document xml)

let snapshot db = db.current

(** [version_at db t] — the newest version committed at or before [t]
    (the oldest known version if [t] predates the history). *)
let version_at db t =
  let rec find = function
    | [] -> db.current
    | [ (_, v) ] -> v
    | (time, v) :: rest -> if time <= t then v else find rest
  in
  find db.history

let doc (v : version) name =
  match Doc_map.find_opt name v.docs with
  | Some s -> Some s
  | None ->
      (* tolerate a leading slash or "./": paper examples use bare names *)
      let trimmed =
        if String.length name > 0 && name.[0] = '/' then
          String.sub name 1 (String.length name - 1)
        else name
      in
      Doc_map.find_opt trimmed v.docs

let doc_exn v name =
  match doc v name with Some s -> s | None -> raise (No_such_document name)

let doc_names (v : version) = List.map fst (Doc_map.bindings v.docs)

(** [commit db pul] applies a pending update list: every touched document
    is rebuilt, [fn:put] documents are stored.  Documents are matched by
    the URI recorded in their store at shred time.  Updates to stores not
    in this database (e.g. constructed fragments) are ignored — their
    effects are invisible by definition. *)
let commit db (pul : Update.pul) =
  if pul = [] then ()
  else begin
  let updated_docs, puts = Update.apply pul in
  let docs =
    List.fold_left
      (fun docs (store, tree) ->
        let name = store.Store.uri in
        match Doc_map.find_opt name docs with
        | Some current when current.Store.doc_id = store.Store.doc_id ->
            Doc_map.add name (Store.shred ~uri:name tree) docs
        | Some _ | None ->
            (* snapshot-based update: the PUL was built against an older
               version; still apply it by name (last-committer-wins, which
               matches the paper's non-deterministic update order) *)
            if name = "" then docs
            else Doc_map.add name (Store.shred ~uri:name tree) docs)
      db.current.docs updated_docs
  in
  let docs =
    List.fold_left
      (fun docs (uri, tree) -> Doc_map.add uri (Store.shred ~uri tree) docs)
      docs puts
  in
  db.current <- { docs; version_no = db.current.version_no + 1 };
  remember db
  end

(** Document names a PUL touches (used for 2PC conflict detection). *)
let touched_docs (pul : Update.pul) =
  List.sort_uniq String.compare
    (List.filter_map
       (fun prim ->
         match Update.target_node prim with
         | Some n when n.Store.store.Store.uri <> "" ->
             Some n.Store.store.Store.uri
         | _ -> (
             match prim with Update.Put (_, uri) -> Some uri | _ -> None))
       pul)
