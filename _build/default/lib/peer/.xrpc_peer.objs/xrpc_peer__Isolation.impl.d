lib/peer/isolation.ml: Database Hashtbl List Unix Xrpc_soap Xrpc_xquery
