lib/peer/wrapper.ml: Buffer Bulk_opt Database Hashtbl List Option Printf Qname Serialize Store String Tree Unix Xdm Xml_parse Xrpc_net Xrpc_soap Xrpc_xml Xrpc_xquery
