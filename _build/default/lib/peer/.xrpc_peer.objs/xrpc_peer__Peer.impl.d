lib/peer/peer.ml: Bulk_opt Database Fun Func_cache Hashtbl Isolation List Logs Mutex Printf Qname Store String Thread Two_pc Unix Xdm Xml_parse Xrpc_net Xrpc_soap Xrpc_xml Xrpc_xquery
