lib/peer/func_cache.ml: Hashtbl Xrpc_xquery
