lib/peer/database.ml: List Map Store String Unix Xml_parse Xrpc_xml Xrpc_xquery
