lib/peer/bulk_opt.ml: Hashtbl List Option Qname String Xdm Xrpc_xml Xrpc_xquery Xs
