lib/peer/two_pc.ml: List Xrpc_net Xrpc_soap
