(** Two-phase-commit coordinator, in the style of WS-AtomicTransaction
    (§2.3).

    The paper deliberately keeps 2PC out of the XRPC protocol proper and
    relies on the web-service transaction standard; we model that standard
    with Prepare/Commit/Rollback SOAP messages on the same channel.  The
    query-originating peer is the coordinator: it learns the full
    participant list from the peer lists piggybacked on XRPC responses,
    asks every participant to prepare (logging its pending update lists),
    and commits only on a unanimous yes vote. *)

module Message = Xrpc_soap.Message
module Transport = Xrpc_net.Transport

type vote = { peer : string; ok : bool; info : string }

type outcome = {
  committed : bool;
  votes : vote list;  (** prepare-phase votes *)
}

let tx transport ~dest op qid =
  let body = Message.to_string (Message.Tx_request (op, qid)) in
  match Message.of_string (transport.Transport.send ~dest body) with
  | Message.Tx_response { ok; info } -> { peer = dest; ok; info }
  | Message.Fault f -> { peer = dest; ok = false; info = f.Message.reason }
  | _ -> { peer = dest; ok = false; info = "malformed transaction reply" }

(** [run_detailed ~transport qid participants] drives the full protocol and
    reports per-peer votes. *)
let run_detailed ~transport (qid : Message.query_id) (participants : string list)
    : outcome =
  let votes = List.map (fun dest -> tx transport ~dest Message.Prepare qid) participants in
  let all_ok = List.for_all (fun v -> v.ok) votes in
  let second = if all_ok then Message.Commit else Message.Rollback in
  let _ = List.map (fun dest -> tx transport ~dest second qid) participants in
  { committed = all_ok; votes }

let run ~transport qid participants =
  (run_detailed ~transport qid participants).committed
