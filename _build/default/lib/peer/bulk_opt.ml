(** Set-oriented execution of Bulk RPC requests.

    §1 of the paper: "Bulk RPC exposes bulk execution opportunities, such
    that e.g. a function that selects with a constant argument is turned
    into a join against the sequence of all arguments"; §4 observes Saxon
    doing exactly this for the bulk [getPerson] request.  This module
    recognizes the selection pattern [PATH[key = $param]] in a function
    body and answers an n-call bulk request with a single scan + hash join
    instead of n scans.  Used by both the native {!Peer} engine (where it
    models MonetDB's loop-lifted join plans) and the §4 {!Wrapper}. *)

open Xrpc_xml
module Xast = Xrpc_xquery.Ast
module Xctx = Xrpc_xquery.Context

(* Strip trivial cardinality wrappers: zero-or-one(e), exactly-one(e), ... *)
let rec strip_wrappers (e : Xast.expr) =
  match e with
  | Xast.Call (q, [ arg ])
    when List.mem q.Qname.local
           [ "zero-or-one"; "exactly-one"; "one-or-more" ] ->
      strip_wrappers arg
  | e -> e

(** Recognize [PATH[key = $param]] with the predicate on the final step;
    returns (path without the predicate, key expression, parameter). *)
let selection_pattern (params : Qname.t list) (body : Xast.expr) =
  let is_param v = List.exists (Qname.equal v) params in
  let split_pred = function
    | Xast.Compare ((Xast.G_eq | Xast.V_eq), k, Xast.Var v) when is_param v ->
        Some (k, v)
    | Xast.Compare ((Xast.G_eq | Xast.V_eq), Xast.Var v, k) when is_param v ->
        Some (k, v)
    | _ -> None
  in
  match strip_wrappers body with
  | Xast.Path (prefix, Xast.Step (axis, test, [ pred ])) -> (
      match split_pred pred with
      | Some (k, v) -> Some (Xast.Path (prefix, Xast.Step (axis, test, [])), k, v)
      | None -> None)
  | Xast.Filter (e, [ pred ]) -> (
      match split_pred pred with
      | Some (k, v) -> Some (e, k, v)
      | None -> None)
  | _ -> None

(** [hash_join_execute ctx f calls] answers all [calls] of a bulk request
    to function [f] with one scan if the body is a selection whose only
    call-dependent input is the selection key.  Returns [None] when the
    pattern does not apply (caller falls back to call-at-a-time). *)
let hash_join_execute ctx (f : Xctx.func) (calls : Xdm.sequence list list) =
  let params = List.map fst f.Xctx.decl.Xast.fn_params in
  match
    Option.bind f.Xctx.decl.Xast.fn_body (fun b -> selection_pattern params b)
  with
  | None -> None
  | Some (path, key_expr, join_param) -> (
      match calls with
      | [] -> Some []
      | [ _ ] -> None (* a single call gains nothing; keep the plain plan *)
      | first_call :: _ ->
          (* non-join parameters must be constant across calls for the
             single-scan plan to be valid (they are in the paper's
             getPerson experiment: the document name) *)
          let join_idx =
            match
              List.find_index (fun p -> Qname.equal p join_param) params
            with
            | Some i -> i
            | None -> assert false
          in
          let constant_elsewhere =
            List.for_all
              (fun call ->
                List.for_all2
                  (fun a b -> Xdm.deep_equal a b)
                  (List.filteri (fun i _ -> i <> join_idx) call)
                  (List.filteri (fun i _ -> i <> join_idx) first_call))
              calls
          in
          if not constant_elsewhere then None
          else
            (* build side: one evaluation of the path *)
            let bind_ctx =
              List.fold_left2
                (fun c p v -> Xctx.bind_var c p v)
                ctx params first_call
            in
            let candidates = Xrpc_xquery.Eval.eval bind_ctx path in
            let index = Hashtbl.create 64 in
            List.iter
              (fun item ->
                let ictx = Xctx.with_context_item bind_ctx item 1 1 in
                List.iter
                  (fun key -> Hashtbl.add index (Xs.to_string key) item)
                  (Xdm.atomize (Xrpc_xquery.Eval.eval ictx key_expr)))
              candidates;
            (* probe side: one lookup per call *)
            Some
              (List.map
                 (fun call ->
                   let key =
                     String.concat " "
                       (List.map Xs.to_string
                          (Xdm.atomize (List.nth call join_idx)))
                   in
                   List.rev (Hashtbl.find_all index key))
                 calls))
