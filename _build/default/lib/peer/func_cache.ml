(** Function cache — prepared module plans (§3.3).

    MonetDB/XQuery caches query plans for functions defined in XQuery
    modules, so an XRPC request usually needs no query parsing and
    optimization, just execution.  Our equivalent caches the parsed module
    program together with a function registry ready to evaluate.  A miss
    re-parses and re-loads the module; the [on_compile] hook fires on every
    miss so benchmarks can charge the paper's observed module translation
    cost (~130 ms in MonetDB) to the simulated clock. *)

module Xast = Xrpc_xquery.Ast
module Xctx = Xrpc_xquery.Context

type compiled = {
  prog : Xast.prog;
  funcs : (Xctx.func_key, Xctx.func) Hashtbl.t;
}

type t = {
  mutable enabled : bool;
  cache : (string, compiled) Hashtbl.t;  (** module uri -> compiled *)
  mutable on_compile : string -> unit;  (** fired on every (re)compile *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(enabled = true) () =
  {
    enabled;
    cache = Hashtbl.create 16;
    on_compile = (fun _ -> ());
    hits = 0;
    misses = 0;
  }

(** [compile t ~uri ~load] returns the compiled module for [uri], using
    [load ()] (parse + prolog processing) on a miss. *)
let compile t ~uri ~(load : unit -> compiled) =
  match if t.enabled then Hashtbl.find_opt t.cache uri else None with
  | Some c ->
      t.hits <- t.hits + 1;
      c
  | None ->
      t.misses <- t.misses + 1;
      t.on_compile uri;
      let c = load () in
      if t.enabled then Hashtbl.replace t.cache uri c;
      c

let invalidate t uri = Hashtbl.remove t.cache uri
let clear t = Hashtbl.reset t.cache
