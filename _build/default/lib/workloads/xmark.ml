(** Deterministic XMark-like data generator.

    The paper's §5 experiment splits an XMark auction document between two
    peers: "persons.xml" (1.1 MB, 250 persons) at peer A and
    "auctions.xml" (50 MB, 4875 closed auctions) at peer B, with 6 matches
    between persons and closed-auction buyers.  We generate documents with
    the same {e structure} (person/@id, closed_auction/buyer/@person,
    annotation payload) and controllable scale.  A linear-congruential
    generator keeps output deterministic across runs. *)

let first_names =
  [| "Sean"; "Julie"; "Gerard"; "Ying"; "Peter"; "Maria"; "Ivan"; "Chen";
     "Aisha"; "Lars"; "Noor"; "Pablo"; "Keiko"; "Anna"; "Tomas"; "Fatima" |]

let last_names =
  [| "Connery"; "Andrews"; "Depardieu"; "Zhang"; "Boncz"; "Garcia"; "Petrov";
     "Wei"; "Khan"; "Nilsen"; "Haddad"; "Moreno"; "Tanaka"; "Kovacs";
     "Novak"; "Rossi" |]

type rng = { mutable state : int }

let rng seed = { state = (seed lor 1) land 0x3FFFFFFF }

let next r bound =
  r.state <- (r.state * 1103515245 + 12345) land 0x3FFFFFFF;
  r.state mod bound

let words =
  [| "vintage"; "pristine"; "rare"; "signed"; "boxed"; "antique"; "mint";
     "restored"; "original"; "limited"; "edition"; "collector"; "classic";
     "handmade"; "imported"; "certified" |]

let sentence r n =
  String.concat " " (List.init n (fun _ -> words.(next r (Array.length words))))

(** [persons ~count] generates the "persons.xml" document: [site/people/
    person] with @id ["personN"], name, emailaddress and a profile blob. *)
let persons ?(seed = 42) ~count () =
  let r = rng seed in
  let buf = Buffer.create (count * 256) in
  Buffer.add_string buf "<site><people>";
  for i = 0 to count - 1 do
    let first = first_names.(next r (Array.length first_names)) in
    let last = last_names.(next r (Array.length last_names)) in
    Printf.bprintf buf
      "<person id=\"person%d\"><name>%s %s</name><emailaddress>mailto:%s.%s@example.org</emailaddress><profile income=\"%d\"><interest category=\"category%d\"/><education>%s</education></profile></person>"
      i first last
      (String.lowercase_ascii first)
      (String.lowercase_ascii last)
      (20000 + next r 80000)
      (next r 20)
      (sentence r 4)
  done;
  Buffer.add_string buf "</people></site>";
  Buffer.contents buf

(** [auctions ~count ~matches ~persons_count] generates "auctions.xml":
    [site] with [items], [open_auctions] (filler, like the real XMark
    where closed auctions are only a fraction of the document — this is
    what makes predicate pushdown ship less than data shipping) and
    [closed_auctions/closed_auction] with [buyer/@person], [itemref],
    price and a verbose [annotation] (the payload Q7 returns).  Exactly
    [matches] closed auctions reference {e distinct} person ids below
    [persons_count]; all others reference ids beyond it, reproducing the
    paper's 6-match join selectivity. *)
let auctions ?(seed = 7) ~count ~matches ~persons_count () =
  let r = rng seed in
  let buf = Buffer.create (count * 1024) in
  Buffer.add_string buf "<site><regions><europe>";
  for i = 0 to count - 1 do
    Printf.bprintf buf
      "<item id=\"item%d\"><name>%s</name><payment>Cash</payment><description><text>%s</text></description><quantity>%d</quantity></item>"
      i (sentence r 3) (sentence r 20) (1 + next r 5)
  done;
  Buffer.add_string buf "</europe></regions><open_auctions>";
  for i = 0 to (count / 2) - 1 do
    Printf.bprintf buf
      "<open_auction id=\"open%d\"><initial>%d.00</initial><bidder><personref person=\"person%d\"/><increase>%d.00</increase></bidder><itemref item=\"item%d\"/></open_auction>"
      i (10 + next r 100)
      (persons_count + next r 1000)
      (1 + next r 20)
      (next r count)
  done;
  Buffer.add_string buf "</open_auctions><closed_auctions>";
  (* spread the matching auctions evenly through the document *)
  let match_every = if matches = 0 then max_int else max 1 (count / matches) in
  let matched = ref 0 in
  for i = 0 to count - 1 do
    let is_match = i mod match_every = 0 && !matched < matches in
    let buyer =
      if is_match then !matched * (max 1 (persons_count / max 1 matches))
      else persons_count + next r (10 * persons_count)
    in
    if is_match then incr matched;
    Printf.bprintf buf
      "<closed_auction><seller person=\"person%d\"/><buyer person=\"person%d\"/><itemref item=\"item%d\"/><price>%d.%02d</price><date>%02d/%02d/2001</date><quantity>1</quantity><annotation><author person=\"person%d\"/><description><text>%s</text></description><happiness>%d</happiness></annotation></closed_auction>"
      (persons_count + next r 1000)
      buyer i
      (10 + next r 490)
      (next r 100)
      (1 + next r 12)
      (1 + next r 28)
      (persons_count + next r 1000)
      (sentence r 24)
      (1 + next r 10)
  done;
  Buffer.add_string buf "</closed_auctions></site>";
  Buffer.contents buf

(** The getPerson function of §4's wrapper example. *)
let functions_module =
  {|module namespace func = "functions";
declare function func:getPerson($doc as xs:string, $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id = $pid]) };
|}

let functions_ns = "functions"
let functions_at = "http://example.org/functions.xq"

(** Default Q7 scale: paper-shaped but laptop-sized. *)
type scale = { persons : int; auctions : int; matches : int }

let default_scale = { persons = 250; auctions = 4875; matches = 6 }
let small_scale = { persons = 50; auctions = 400; matches = 6 }
