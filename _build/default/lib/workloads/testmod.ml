(** The micro-benchmark module of §3.3 / §4 (echoVoid and friends). *)

let test_module =
  {|module namespace tst = "test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { $x };
declare function tst:ping($i as xs:integer) as xs:integer { $i };
declare function tst:payload($n as xs:integer) as xs:string
{ string-join(for $i in 1 to $n return "0123456789abcdef", "") };
|}

let module_ns = "test"
let module_at = "http://x.example.org/test.xq"

(** The echoVoid driver query of §3.3: [$x] XRPC calls in a for-loop. *)
let echo_void_query ~dest ~iterations =
  Printf.sprintf
    {|import module namespace t="test" at "http://x.example.org/test.xq";
for $i in (1 to %d)
return execute at {%S} {t:echoVoid()}|}
    iterations dest

(** Request-payload scaling: ship an [$n]-times-16-byte string out. *)
let upload_query ~dest ~chunks =
  Printf.sprintf
    {|import module namespace t="test" at "http://x.example.org/test.xq";
let $payload := string-join(for $i in 1 to %d return "0123456789abcdef", "")
return string-length(execute at {%S} {t:echo($payload)})|}
    chunks dest

(** Response-payload scaling: ask the peer to generate the payload. *)
let download_query ~dest ~chunks =
  Printf.sprintf
    {|import module namespace t="test" at "http://x.example.org/test.xq";
string-length(execute at {%S} {t:payload(%d)})|}
    dest chunks

(** getPerson driver for the §4 wrapper experiment. *)
let get_person_query ~dest ~iterations ~persons_count =
  Printf.sprintf
    {|import module namespace func="functions" at "http://example.org/functions.xq";
for $i in (1 to %d)
return execute at {%S} {func:getPerson("persons.xml", concat("person", string($i mod %d)))}|}
    iterations dest persons_count
