lib/workloads/filmdb.ml: Printf Xrpc_peer
