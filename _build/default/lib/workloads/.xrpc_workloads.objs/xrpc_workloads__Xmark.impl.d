lib/workloads/xmark.ml: Array Buffer List Printf String
