lib/workloads/testmod.ml: Printf
