(** The running example of §2: film databases and the [films] module. *)

(** Contents of "filmDB.xml" as printed in the paper. *)
let film_db_xml =
  {|<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>|}

(** A second peer's variant (used by the multi-destination examples, where
    z.example.org holds different films). *)
let film_db_xml_z =
  {|<films>
<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
<film><name>The Princess Diaries</name><actor>Julie Andrews</actor></film>
<film><name>Dr. No</name><actor>Sean Connery</actor></film>
</films>|}

(** The module film.xq stored at x.example.org (§2). *)
let film_module =
  {|module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };
declare function film:actors() as xs:string*
{ distinct-values(doc("filmDB.xml")//actor/string(.)) };
declare updating function film:addFilm($name as xs:string, $actor as xs:string)
{ insert node <film><name>{$name}</name><actor>{$actor}</actor></film>
  into exactly-one(doc("filmDB.xml")/films) };
declare updating function film:deleteFilm($name as xs:string)
{ delete nodes doc("filmDB.xml")//film[name = $name] };
|}

let module_ns = "films"
let module_at = "http://x.example.org/film.xq"

(** Install the film database + module on a peer. *)
let install (peer : Xrpc_peer.Peer.t) ?(variant = `Y) () =
  let xml = match variant with `Y -> film_db_xml | `Z -> film_db_xml_z in
  Xrpc_peer.Database.add_doc_xml peer.Xrpc_peer.Peer.db "filmDB.xml" xml;
  Xrpc_peer.Peer.register_module peer ~uri:module_ns ~location:module_at
    film_module

(** Query Q1 of the paper. *)
let q1 ~dest =
  Printf.sprintf
    {|import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  execute at {%S} {f:filmsByActor("Sean Connery")}
} </films>|}
    dest

(** Query Q2: multiple calls to one peer (Bulk RPC target). *)
let q2 ~dest =
  Printf.sprintf
    {|import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := %S
  return execute at {$dst} {f:filmsByActor($actor)}
} </films>|}
    dest

(** Query Q3: multiple calls to multiple peers (Figure 1's example). *)
let q3 ~dest1 ~dest2 =
  Printf.sprintf
    {|import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  for $dst in (%S, %S)
  return execute at {$dst} {f:filmsByActor($actor)}
} </films>|}
    dest1 dest2

(** Query Q6: two call sites inside one loop — the out-of-order example. *)
let q6 ~dest =
  Printf.sprintf
    {|import module namespace f="films" at "http://x.example.org/film.xq";
for $name in ("Julie", "Sean")
let $connery := concat($name, " ", "Connery")
let $andrews := concat($name, " ", "Andrews")
return (
  execute at {%S} {f:filmsByActor($connery)},
  execute at {%S} {f:filmsByActor($andrews)} )|}
    dest dest
