(** Recursive-descent parser for the XQuery subset + XRPC.

    Grammar follows XQuery 1.0 operator precedence.  The productions the
    paper adds/uses are all here: [execute at "{" Expr "}" "{" FunctionCall
    "}"] (§2), XQUF update expressions (§2.3), modules and [declare option]
    (for [xrpc:isolation] / [xrpc:timeout]).  Direct element constructors
    are parsed at character level by rewinding the lexer (see {!Lexer}). *)

open Xrpc_xml

exception Syntax_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

type t = {
  lx : Lexer.t;
  mutable namespaces : (string * string) list;
  mutable default_elem_ns : string;
  mutable default_fn_ns : string;
  mutable boundary_space : bool;
}

let default_namespaces =
  [
    ("xml", Qname.ns_xml);
    ("xs", Qname.ns_xs);
    ("xsi", Qname.ns_xsi);
    ("fn", Qname.ns_fn);
    ("local", "http://www.w3.org/2005/xquery-local-functions");
    ("xrpc", Qname.ns_xrpc);
  ]

let make src =
  {
    lx = Lexer.make src;
    namespaces = default_namespaces;
    default_elem_ns = "";
    default_fn_ns = Qname.ns_fn;
    boundary_space = false;
  }

(* ------------------------------------------------------------------ *)
(* Token helpers                                                       *)
(* ------------------------------------------------------------------ *)

let tok p = p.lx.Lexer.tok
let advance p = Lexer.next p.lx

let expect_sym p s =
  match tok p with
  | Lexer.Sym s' when s' = s -> advance p
  | t -> error "expected %S but found %s" s (Lexer.token_to_string t)

let eat_sym p s =
  match tok p with
  | Lexer.Sym s' when s' = s ->
      advance p;
      true
  | _ -> false

let is_name p kw =
  match tok p with Lexer.Name ("", n) -> n = kw | _ -> false

let eat_name p kw =
  if is_name p kw then (
    advance p;
    true)
  else false

let expect_name p kw =
  if not (eat_name p kw) then
    error "expected keyword %S but found %s" kw
      (Lexer.token_to_string (tok p))

let expect_string p =
  match tok p with
  | Lexer.Str_lit s ->
      advance p;
      s
  | t -> error "expected string literal, found %s" (Lexer.token_to_string t)

(** Peek at the token after the current one without consuming anything. *)
let peek2 p =
  let lx = p.lx in
  let save_pos = lx.Lexer.pos
  and save_tok = lx.Lexer.tok
  and save_start = lx.Lexer.tok_start in
  Lexer.next lx;
  let t = lx.Lexer.tok in
  lx.Lexer.pos <- save_pos;
  lx.Lexer.tok <- save_tok;
  lx.Lexer.tok_start <- save_start;
  t

(** Peek two tokens ahead (used to spot computed constructors like
    [element name {..}] in step position). *)
let peek3 p =
  let lx = p.lx in
  let save_pos = lx.Lexer.pos
  and save_tok = lx.Lexer.tok
  and save_start = lx.Lexer.tok_start in
  Lexer.next lx;
  Lexer.next lx;
  let t = lx.Lexer.tok in
  lx.Lexer.pos <- save_pos;
  lx.Lexer.tok <- save_tok;
  lx.Lexer.tok_start <- save_start;
  t

let resolve_prefix p prefix =
  match List.assoc_opt prefix p.namespaces with
  | Some uri -> uri
  | None -> error "unbound namespace prefix %S" prefix

(** Resolve a lexical QName in element-name position. *)
let elem_qname p (prefix, local) =
  let uri = if prefix = "" then p.default_elem_ns else resolve_prefix p prefix in
  Qname.make ~prefix ~uri local

(** Resolve in function-name position (default = fn namespace). *)
let fn_qname p (prefix, local) =
  let uri = if prefix = "" then p.default_fn_ns else resolve_prefix p prefix in
  Qname.make ~prefix ~uri local

(** Resolve in variable-name position (default = no namespace). *)
let var_qname p (prefix, local) =
  let uri = if prefix = "" then "" else resolve_prefix p prefix in
  Qname.make ~prefix ~uri local

let expect_var p =
  match tok p with
  | Lexer.Var (pfx, local) ->
      advance p;
      var_qname p (pfx, local)
  | t -> error "expected variable, found %s" (Lexer.token_to_string t)

(* Reserved words that can never be function names. *)
let reserved_fn_names =
  [
    "attribute"; "comment"; "document-node"; "element"; "empty-sequence";
    "if"; "item"; "node"; "processing-instruction"; "text"; "typeswitch";
  ]

(* ------------------------------------------------------------------ *)
(* Sequence types                                                      *)
(* ------------------------------------------------------------------ *)

let atomic_type p (prefix, local) =
  let uri = if prefix = "" then Qname.ns_xs else resolve_prefix p prefix in
  if uri <> Qname.ns_xs then error "unknown type namespace %s" uri;
  match Xs.type_of_name local with
  | Some t -> t
  | None -> error "unknown atomic type xs:%s" local

let parse_occurrence p =
  match tok p with
  | Lexer.Sym "?" ->
      advance p;
      Ast.Zero_or_one
  | Lexer.Sym "*" ->
      advance p;
      Ast.Zero_or_more
  | Lexer.Sym "+" ->
      advance p;
      Ast.One_or_more
  | _ -> Ast.Exactly_one

let parse_item_type p =
  match tok p with
  | Lexer.Name (pfx, local) -> (
      if peek2 p = Lexer.Sym "(" then (
        advance p;
        expect_sym p "(";
        let name_arg () =
          match tok p with
          | Lexer.Sym ")" -> None
          | Lexer.Sym "*" ->
              advance p;
              None
          | Lexer.Name (np, nl) ->
              advance p;
              Some (elem_qname p (np, nl))
          | t -> error "bad kind test argument %s" (Lexer.token_to_string t)
        in
        let it =
          match (pfx, local) with
          | "", "item" -> Ast.It_item
          | "", "node" -> Ast.It_node
          | "", "text" -> Ast.It_text
          | "", "comment" -> Ast.It_comment
          | "", "processing-instruction" -> Ast.It_pi
          | "", "document-node" -> Ast.It_document
          | "", "element" -> Ast.It_element (name_arg ())
          | "", "attribute" -> Ast.It_attribute (name_arg ())
          | _ -> error "unknown item type %s" local
        in
        expect_sym p ")";
        it)
      else (
        advance p;
        Ast.It_atomic (atomic_type p (pfx, local))))
  | t -> error "expected item type, found %s" (Lexer.token_to_string t)

let parse_seq_type p =
  if is_name p "empty-sequence" && peek2 p = Lexer.Sym "(" then (
    advance p;
    expect_sym p "(";
    expect_sym p ")";
    Ast.Seq_empty)
  else
    let it = parse_item_type p in
    let occ = parse_occurrence p in
    Ast.Seq (it, occ)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr p : Ast.expr =
  let e1 = parse_expr_single p in
  if eat_sym p "," then
    let rec more acc =
      let e = parse_expr_single p in
      if eat_sym p "," then more (e :: acc) else List.rev (e :: acc)
    in
    Ast.Sequence (more [ e1 ])
  else e1

and parse_expr_single p =
  match tok p with
  | Lexer.Name ("", ("for" | "let")) when is_flwor_start p -> parse_flwor p
  | Lexer.Name ("", ("some" | "every"))
    when (match peek2 p with Lexer.Var _ -> true | _ -> false) ->
      parse_quantified p
  | Lexer.Name ("", "typeswitch") when peek2 p = Lexer.Sym "(" ->
      parse_typeswitch p
  | Lexer.Name ("", "if") when peek2 p = Lexer.Sym "(" -> parse_if p
  | Lexer.Name ("", "execute") when peek2 p = Lexer.Name ("", "at") ->
      parse_execute_at p
  | Lexer.Name ("", "insert")
    when (match peek2 p with
         | Lexer.Name ("", ("node" | "nodes")) -> true
         | _ -> false) ->
      parse_insert p
  | Lexer.Name ("", "delete")
    when (match peek2 p with
         | Lexer.Name ("", ("node" | "nodes")) -> true
         | _ -> false) ->
      advance p;
      advance p;
      Ast.Delete (parse_expr_single p)
  | Lexer.Name ("", "replace")
    when (match peek2 p with
         | Lexer.Name ("", ("node" | "value")) -> true
         | _ -> false) ->
      parse_replace p
  | Lexer.Name ("", "rename") when peek2 p = Lexer.Name ("", "node") ->
      advance p;
      advance p;
      let target = parse_expr_single p in
      expect_name p "as";
      let name = parse_expr_single p in
      Ast.Rename_node (target, name)
  | _ -> parse_or p

and is_flwor_start p =
  (* "for"/"let" must be followed by "$var" to be a FLWOR *)
  match peek2 p with Lexer.Var _ -> true | _ -> false

and parse_flwor p =
  let clauses = ref [] in
  let rec clause_loop () =
    match tok p with
    | Lexer.Name ("", "for") when is_flwor_start p ->
        advance p;
        let rec bind () =
          let v = expect_var p in
          let posvar =
            if eat_name p "at" then Some (expect_var p) else None
          in
          (* optional type annotation ignored for binding *)
          if eat_name p "as" then ignore (parse_seq_type p);
          expect_name p "in";
          let e = parse_expr_single p in
          clauses := Ast.For (v, posvar, e) :: !clauses;
          if eat_sym p "," then bind ()
        in
        bind ();
        clause_loop ()
    | Lexer.Name ("", "let") when is_flwor_start p ->
        advance p;
        let rec bind () =
          let v = expect_var p in
          if eat_name p "as" then ignore (parse_seq_type p);
          expect_sym p ":=";
          let e = parse_expr_single p in
          clauses := Ast.Let (v, e) :: !clauses;
          if eat_sym p "," then bind ()
        in
        bind ();
        clause_loop ()
    | Lexer.Name ("", "where") ->
        advance p;
        clauses := Ast.Where (parse_expr_single p) :: !clauses;
        clause_loop ()
    | _ -> ()
  in
  clause_loop ();
  let order_by =
    if is_name p "order" then (
      advance p;
      expect_name p "by";
      let rec specs acc =
        let e = parse_expr_single p in
        let desc =
          if eat_name p "descending" then true
          else (
            ignore (eat_name p "ascending");
            false)
        in
        if eat_sym p "," then specs ((e, desc) :: acc)
        else List.rev ((e, desc) :: acc)
      in
      specs [])
    else if is_name p "stable" then (
      advance p;
      expect_name p "order";
      expect_name p "by";
      let e = parse_expr_single p in
      [ (e, false) ])
    else []
  in
  expect_name p "return";
  let ret = parse_expr_single p in
  Ast.Flwor (List.rev !clauses, order_by, ret)

and parse_quantified p =
  let quant = if is_name p "some" then `Some else `Every in
  advance p;
  let rec binds acc =
    let v = expect_var p in
    if eat_name p "as" then ignore (parse_seq_type p);
    expect_name p "in";
    let e = parse_expr_single p in
    if eat_sym p "," then binds ((v, e) :: acc) else List.rev ((v, e) :: acc)
  in
  let bs = binds [] in
  expect_name p "satisfies";
  Ast.Quantified (quant, bs, parse_expr_single p)

and parse_typeswitch p =
  advance p;
  expect_sym p "(";
  let operand = parse_expr p in
  expect_sym p ")";
  let rec cases acc =
    if eat_name p "case" then (
      let v =
        match tok p with
        | Lexer.Var _ ->
            let v = expect_var p in
            expect_name p "as";
            Some v
        | _ -> None
      in
      let st = parse_seq_type p in
      expect_name p "return";
      let e = parse_expr_single p in
      cases ((st, v, e) :: acc))
    else List.rev acc
  in
  let cs = cases [] in
  expect_name p "default";
  let dv =
    match tok p with Lexer.Var _ -> Some (expect_var p) | _ -> None
  in
  expect_name p "return";
  let de = parse_expr_single p in
  Ast.Typeswitch (operand, cs, (dv, de))

and parse_if p =
  advance p;
  expect_sym p "(";
  let c = parse_expr p in
  expect_sym p ")";
  expect_name p "then";
  let t = parse_expr_single p in
  expect_name p "else";
  let e = parse_expr_single p in
  Ast.If (c, t, e)

and parse_execute_at p =
  advance p;
  (* execute *)
  expect_name p "at";
  expect_sym p "{";
  let dest = parse_expr p in
  expect_sym p "}";
  expect_sym p "{";
  let fname, args =
    match tok p with
    | Lexer.Name (pfx, local) ->
        advance p;
        let q = fn_qname p (pfx, local) in
        expect_sym p "(";
        let args =
          if eat_sym p ")" then []
          else
            let rec more acc =
              let e = parse_expr_single p in
              if eat_sym p "," then more (e :: acc)
              else (
                expect_sym p ")";
                List.rev (e :: acc))
            in
            more []
        in
        (q, args)
    | t -> error "expected function call in execute at, found %s"
             (Lexer.token_to_string t)
  in
  expect_sym p "}";
  Ast.Execute_at (dest, fname, args)

and parse_insert p =
  advance p;
  advance p;
  (* insert node(s) *)
  let src = parse_expr_single p in
  let target_kind =
    if eat_name p "into" then Ast.Into
    else if eat_name p "as" then
      if eat_name p "first" then (
        expect_name p "into";
        Ast.As_first)
      else (
        expect_name p "last";
        expect_name p "into";
        Ast.As_last)
    else if eat_name p "before" then Ast.Before
    else if eat_name p "after" then Ast.After
    else error "expected into/before/after in insert"
  in
  let target = parse_expr_single p in
  Ast.Insert (target_kind, src, target)

and parse_replace p =
  advance p;
  (* replace *)
  if eat_name p "value" then (
    expect_name p "of";
    expect_name p "node";
    let target = parse_expr_single p in
    expect_name p "with";
    Ast.Replace_value (target, parse_expr_single p))
  else (
    expect_name p "node";
    let target = parse_expr_single p in
    expect_name p "with";
    Ast.Replace_node (target, parse_expr_single p))

and parse_or p =
  let a = parse_and p in
  if is_name p "or" then (
    advance p;
    Ast.Or (a, parse_or p))
  else a

and parse_and p =
  let a = parse_comparison p in
  if is_name p "and" then (
    advance p;
    Ast.And (a, parse_and p))
  else a

and parse_comparison p =
  let a = parse_range p in
  let mk op =
    advance p;
    Ast.Compare (op, a, parse_range p)
  in
  match tok p with
  | Lexer.Sym "=" -> mk Ast.G_eq
  | Lexer.Sym "!=" -> mk Ast.G_ne
  | Lexer.Sym "<" -> mk Ast.G_lt
  | Lexer.Sym "<=" -> mk Ast.G_le
  | Lexer.Sym ">" -> mk Ast.G_gt
  | Lexer.Sym ">=" -> mk Ast.G_ge
  | Lexer.Sym "<<" -> mk Ast.N_before
  | Lexer.Sym ">>" -> mk Ast.N_after
  | Lexer.Name ("", "eq") -> mk Ast.V_eq
  | Lexer.Name ("", "ne") -> mk Ast.V_ne
  | Lexer.Name ("", "lt") -> mk Ast.V_lt
  | Lexer.Name ("", "le") -> mk Ast.V_le
  | Lexer.Name ("", "gt") -> mk Ast.V_gt
  | Lexer.Name ("", "ge") -> mk Ast.V_ge
  | Lexer.Name ("", "is") -> mk Ast.N_is
  | _ -> a

and parse_range p =
  let a = parse_additive p in
  if is_name p "to" then (
    advance p;
    Ast.Range (a, parse_additive p))
  else a

and parse_additive p =
  let rec loop a =
    match tok p with
    | Lexer.Sym "+" ->
        advance p;
        loop (Ast.Arith (Ast.Add, a, parse_multiplicative p))
    | Lexer.Sym "-" ->
        advance p;
        loop (Ast.Arith (Ast.Sub, a, parse_multiplicative p))
    | _ -> a
  in
  loop (parse_multiplicative p)

and parse_multiplicative p =
  let rec loop a =
    match tok p with
    | Lexer.Sym "*" ->
        advance p;
        loop (Ast.Arith (Ast.Mul, a, parse_union p))
    | Lexer.Name ("", "div") ->
        advance p;
        loop (Ast.Arith (Ast.Div, a, parse_union p))
    | Lexer.Name ("", "idiv") ->
        advance p;
        loop (Ast.Arith (Ast.Idiv, a, parse_union p))
    | Lexer.Name ("", "mod") ->
        advance p;
        loop (Ast.Arith (Ast.Mod, a, parse_union p))
    | _ -> a
  in
  loop (parse_union p)

and parse_union p =
  let rec loop a =
    if eat_sym p "|" || (is_name p "union" && peek2_not_brace p) then (
      if is_name p "union" then advance p;
      loop (Ast.Union (a, parse_intersect_except p)))
    else a
  in
  loop (parse_intersect_except p)

and parse_intersect_except p =
  let rec loop a =
    if is_name p "intersect" then (
      advance p;
      loop (Ast.Intersect (a, parse_instance_of p)))
    else if is_name p "except" then (
      advance p;
      loop (Ast.Except (a, parse_instance_of p)))
    else a
  in
  loop (parse_instance_of p)

and peek2_not_brace _p = true

and parse_instance_of p =
  let a = parse_treat p in
  if is_name p "instance" then (
    advance p;
    expect_name p "of";
    Ast.Instance_of (a, parse_seq_type p))
  else a

and parse_treat p =
  let a = parse_castable p in
  if is_name p "treat" then (
    advance p;
    expect_name p "as";
    Ast.Treat_as (a, parse_seq_type p))
  else a

and parse_castable p =
  let a = parse_cast p in
  if is_name p "castable" then (
    advance p;
    expect_name p "as";
    let t, opt = parse_single_type p in
    Ast.Castable_as (a, t, opt))
  else a

and parse_single_type p =
  match tok p with
  | Lexer.Name (pfx, local) ->
      advance p;
      let t = atomic_type p (pfx, local) in
      let opt = eat_sym p "?" in
      (t, opt)
  | t -> error "expected atomic type, found %s" (Lexer.token_to_string t)

and parse_cast p =
  let a = parse_unary p in
  if is_name p "cast" then (
    advance p;
    expect_name p "as";
    let t, opt = parse_single_type p in
    Ast.Cast_as (a, t, opt))
  else a

and parse_unary p =
  if eat_sym p "-" then Ast.Neg (parse_unary p)
  else if eat_sym p "+" then parse_unary p
  else parse_path p

and parse_path p =
  match tok p with
  | Lexer.Sym "/" -> (
      advance p;
      match tok p with
      | Lexer.Name _ | Lexer.Star_colon _ | Lexer.Ns_star _ | Lexer.Sym "*"
      | Lexer.Sym "@" | Lexer.Sym "." | Lexer.Sym ".." ->
          Ast.Path (Ast.Root, parse_relative_path p)
      | _ -> Ast.Root)
  | Lexer.Sym "//" ->
      advance p;
      Ast.Path
        ( Ast.Path (Ast.Root, Ast.Step (Ast.Descendant_or_self, Ast.Kind_test Ast.K_node, [])),
          parse_relative_path p )
  | _ -> parse_relative_path p

and parse_relative_path p =
  let rec loop a =
    match tok p with
    | Lexer.Sym "/" ->
        advance p;
        loop (Ast.Path (a, parse_step p))
    | Lexer.Sym "//" ->
        advance p;
        let a =
          Ast.Path (a, Ast.Step (Ast.Descendant_or_self, Ast.Kind_test Ast.K_node, []))
        in
        loop (Ast.Path (a, parse_step p))
    | _ -> a
  in
  loop (parse_step p)

and parse_predicates p =
  let rec loop acc =
    if eat_sym p "[" then (
      let e = parse_expr p in
      expect_sym p "]";
      loop (e :: acc))
    else List.rev acc
  in
  loop []

and is_computed_ctor p =
  (* computed constructors must win over name-test steps *)
  match tok p with
  | Lexer.Name ("", ("element" | "attribute")) -> (
      match peek2 p with
      | Lexer.Sym "{" -> true
      | Lexer.Name _ -> peek3 p = Lexer.Sym "{"
      | _ -> false)
  | Lexer.Name ("", ("text" | "comment" | "document")) ->
      peek2 p = Lexer.Sym "{"
  | _ -> false

and parse_step p =
  if is_computed_ctor p then (
    let prim = parse_primary p in
    let preds = parse_predicates p in
    if preds = [] then prim else Ast.Filter (prim, preds))
  else
  match tok p with
  | Lexer.Sym ".." ->
      advance p;
      let preds = parse_predicates p in
      Ast.Step (Ast.Parent, Ast.Kind_test Ast.K_node, preds)
  | Lexer.Sym "@" ->
      advance p;
      let test = parse_node_test p ~attr:true in
      Ast.Step (Ast.Attribute, test, parse_predicates p)
  | Lexer.Name ("", axis) when peek2 p = Lexer.Sym "::" && is_axis_name axis ->
      advance p;
      advance p;
      let ax = axis_of_name axis in
      let test = parse_node_test p ~attr:(ax = Ast.Attribute) in
      Ast.Step (ax, test, parse_predicates p)
  | Lexer.Name ("", kt)
    when peek2 p = Lexer.Sym "("
         && List.mem kt
              [ "node"; "text"; "comment"; "processing-instruction";
                "document-node"; "element"; "attribute" ] ->
      let test = parse_node_test p ~attr:false in
      Ast.Step (Ast.Child, test, parse_predicates p)
  | Lexer.Name (pfx, local)
    when peek2 p <> Lexer.Sym "(" || List.mem local reserved_fn_names ->
      advance p;
      let q = elem_qname p (pfx, local) in
      Ast.Step (Ast.Child, Ast.Name_test q, parse_predicates p)
  | Lexer.Star_colon local ->
      advance p;
      Ast.Step (Ast.Child, Ast.Local_wildcard local, parse_predicates p)
  | Lexer.Ns_star pfx ->
      advance p;
      Ast.Step (Ast.Child, Ast.Ns_wildcard (resolve_prefix p pfx), parse_predicates p)
  | Lexer.Sym "*" ->
      advance p;
      Ast.Step (Ast.Child, Ast.Any_name, parse_predicates p)
  | _ ->
      let prim = parse_primary p in
      let preds = parse_predicates p in
      if preds = [] then prim else Ast.Filter (prim, preds)

and is_axis_name = function
  | "child" | "descendant" | "descendant-or-self" | "self" | "parent"
  | "ancestor" | "ancestor-or-self" | "attribute" | "following-sibling"
  | "preceding-sibling" | "following" | "preceding" ->
      true
  | _ -> false

and axis_of_name = function
  | "child" -> Ast.Child
  | "descendant" -> Ast.Descendant
  | "descendant-or-self" -> Ast.Descendant_or_self
  | "self" -> Ast.Self
  | "parent" -> Ast.Parent
  | "ancestor" -> Ast.Ancestor
  | "ancestor-or-self" -> Ast.Ancestor_or_self
  | "attribute" -> Ast.Attribute
  | "following-sibling" -> Ast.Following_sibling
  | "preceding-sibling" -> Ast.Preceding_sibling
  | "following" -> Ast.Following
  | "preceding" -> Ast.Preceding
  | a -> error "unknown axis %s" a

and parse_node_test p ~attr =
  match tok p with
  | Lexer.Sym "*" ->
      advance p;
      Ast.Any_name
  | Lexer.Star_colon local ->
      advance p;
      Ast.Local_wildcard local
  | Lexer.Ns_star pfx ->
      advance p;
      Ast.Ns_wildcard (resolve_prefix p pfx)
  | Lexer.Name ("", kt) when peek2 p = Lexer.Sym "(" -> (
      match kt with
      | "node" ->
          advance p;
          expect_sym p "(";
          expect_sym p ")";
          Ast.Kind_test Ast.K_node
      | "text" ->
          advance p;
          expect_sym p "(";
          expect_sym p ")";
          Ast.Kind_test Ast.K_text
      | "comment" ->
          advance p;
          expect_sym p "(";
          expect_sym p ")";
          Ast.Kind_test Ast.K_comment
      | "document-node" ->
          advance p;
          expect_sym p "(";
          expect_sym p ")";
          Ast.Kind_test Ast.K_document
      | "processing-instruction" ->
          advance p;
          expect_sym p "(";
          let target =
            match tok p with
            | Lexer.Name ("", n) ->
                advance p;
                Some n
            | Lexer.Str_lit s ->
                advance p;
                Some s
            | _ -> None
          in
          expect_sym p ")";
          Ast.Kind_test (Ast.K_pi target)
      | "element" ->
          advance p;
          expect_sym p "(";
          let n =
            match tok p with
            | Lexer.Name (np, nl) ->
                advance p;
                Some (elem_qname p (np, nl))
            | Lexer.Sym "*" ->
                advance p;
                None
            | _ -> None
          in
          expect_sym p ")";
          Ast.Kind_test (Ast.K_element n)
      | "attribute" ->
          advance p;
          expect_sym p "(";
          let n =
            match tok p with
            | Lexer.Name (np, nl) ->
                advance p;
                Some (elem_qname p (np, nl))
            | Lexer.Sym "*" ->
                advance p;
                None
            | _ -> None
          in
          expect_sym p ")";
          Ast.Kind_test (Ast.K_attribute n)
      | n ->
          advance p;
          Ast.Name_test (elem_qname p ("", n)))
  | Lexer.Name (pfx, local) ->
      advance p;
      if attr then
        (* attribute names: no default namespace *)
        let uri = if pfx = "" then "" else resolve_prefix p pfx in
        Ast.Name_test (Qname.make ~prefix:pfx ~uri local)
      else Ast.Name_test (elem_qname p (pfx, local))
  | t -> error "expected node test, found %s" (Lexer.token_to_string t)

and parse_primary p =
  match tok p with
  | Lexer.Int_lit i ->
      advance p;
      Ast.Literal (Xs.Integer i)
  | Lexer.Dec_lit f ->
      advance p;
      Ast.Literal (Xs.Decimal f)
  | Lexer.Dbl_lit f ->
      advance p;
      Ast.Literal (Xs.Double f)
  | Lexer.Str_lit s ->
      advance p;
      Ast.Literal (Xs.String s)
  | Lexer.Var (pfx, local) ->
      advance p;
      Ast.Var (var_qname p (pfx, local))
  | Lexer.Sym "(" ->
      advance p;
      if eat_sym p ")" then Ast.Sequence []
      else
        let e = parse_expr p in
        expect_sym p ")";
        e
  | Lexer.Sym "." ->
      advance p;
      Ast.Context_item
  | Lexer.Sym "<" -> parse_direct_constructor p
  | Lexer.Name ("", "element")
    when (match peek2 p with
         | Lexer.Sym "{" | Lexer.Name _ -> true
         | _ -> false) ->
      advance p;
      let name_e =
        if eat_sym p "{" then (
          let e = parse_expr p in
          expect_sym p "}";
          e)
        else
          match tok p with
          | Lexer.Name (pfx, local) ->
              advance p;
              Ast.Literal (Xs.QName (elem_qname p (pfx, local)))
          | t -> error "expected element name, found %s" (Lexer.token_to_string t)
      in
      expect_sym p "{";
      let content = if eat_sym p "}" then Ast.Sequence [] else (
        let e = parse_expr p in
        expect_sym p "}";
        e)
      in
      Ast.Comp_elem (name_e, content)
  | Lexer.Name ("", "attribute")
    when (match peek2 p with
         | Lexer.Sym "{" | Lexer.Name _ -> true
         | _ -> false) ->
      advance p;
      let name_e =
        if eat_sym p "{" then (
          let e = parse_expr p in
          expect_sym p "}";
          e)
        else
          match tok p with
          | Lexer.Name (pfx, local) ->
              advance p;
              let uri = if pfx = "" then "" else resolve_prefix p pfx in
              Ast.Literal (Xs.QName (Qname.make ~prefix:pfx ~uri local))
          | t -> error "expected attribute name, found %s" (Lexer.token_to_string t)
      in
      expect_sym p "{";
      let content = if eat_sym p "}" then Ast.Sequence [] else (
        let e = parse_expr p in
        expect_sym p "}";
        e)
      in
      Ast.Comp_attr (name_e, content)
  | Lexer.Name ("", "text") when peek2 p = Lexer.Sym "{" ->
      advance p;
      expect_sym p "{";
      let e = parse_expr p in
      expect_sym p "}";
      Ast.Text_ctor e
  | Lexer.Name ("", "comment") when peek2 p = Lexer.Sym "{" ->
      advance p;
      expect_sym p "{";
      let e = parse_expr p in
      expect_sym p "}";
      Ast.Comment_ctor e
  | Lexer.Name ("", "document") when peek2 p = Lexer.Sym "{" ->
      advance p;
      expect_sym p "{";
      let e = parse_expr p in
      expect_sym p "}";
      Ast.Doc_ctor e
  | Lexer.Name (pfx, local)
    when peek2 p = Lexer.Sym "(" && not (List.mem local reserved_fn_names) ->
      advance p;
      let q = fn_qname p (pfx, local) in
      expect_sym p "(";
      let args =
        if eat_sym p ")" then []
        else
          let rec more acc =
            let e = parse_expr_single p in
            if eat_sym p "," then more (e :: acc)
            else (
              expect_sym p ")";
              List.rev (e :: acc))
          in
          more []
      in
      Ast.Call (q, args)
  | t -> error "unexpected token %s" (Lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Direct constructors (character level)                               *)
(* ------------------------------------------------------------------ *)

and parse_direct_constructor p =
  Lexer.rewind_to_token p.lx;
  let lx = p.lx in
  let src = lx.Lexer.src in
  let cur () = if lx.Lexer.pos < String.length src then Some src.[lx.Lexer.pos] else None in
  let adv () = lx.Lexer.pos <- lx.Lexer.pos + 1 in
  let looking s =
    let n = String.length s in
    lx.Lexer.pos + n <= String.length src && String.sub src lx.Lexer.pos n = s
  in
  let expect_ch c =
    match cur () with
    | Some c' when c' = c -> adv ()
    | _ -> error "direct constructor: expected %c at %d" c lx.Lexer.pos
  in
  let read_name () =
    let start = lx.Lexer.pos in
    while
      lx.Lexer.pos < String.length src
      && (Lexer.is_name_char src.[lx.Lexer.pos] || src.[lx.Lexer.pos] = ':')
    do
      adv ()
    done;
    if lx.Lexer.pos = start then error "direct constructor: expected name";
    Qname.split (String.sub src start (lx.Lexer.pos - start))
  in
  let skip_ws () =
    while
      match cur () with Some c when Lexer.is_space c -> true | _ -> false
    do
      adv ()
    done
  in
  (* parse an enclosed expression "{...}" starting at the "{" *)
  let enclosed_expr () =
    expect_ch '{';
    Lexer.reprime lx;
    let e = parse_expr p in
    (match tok p with
    | Lexer.Sym "}" -> lx.Lexer.pos <- lx.Lexer.tok_start + 1
    | t -> error "expected } after enclosed expression, found %s"
             (Lexer.token_to_string t))
    ;
    e
  in
  let rec parse_elem () =
    expect_ch '<';
    let prefix, local = read_name () in
    (* attributes: value is a mix of literal text and enclosed exprs *)
    let ns_decls = ref [] in
    let attrs = ref [] in
    let rec attr_loop () =
      skip_ws ();
      match cur () with
      | Some c when Lexer.is_name_start c ->
          let apfx, alocal = read_name () in
          skip_ws ();
          expect_ch '=';
          skip_ws ();
          let quote =
            match cur () with
            | Some (('"' | '\'') as q) ->
                adv ();
                q
            | _ -> error "expected attribute value"
          in
          let parts = ref [] in
          let buf = Buffer.create 16 in
          let flush_text () =
            if Buffer.length buf > 0 then (
              parts := Ast.A_text (Buffer.contents buf) :: !parts;
              Buffer.clear buf)
          in
          let rec value_loop () =
            match cur () with
            | None -> error "unterminated attribute value"
            | Some c when c = quote -> adv ()
            | Some '{' when looking "{{" ->
                adv ();
                adv ();
                Buffer.add_char buf '{';
                value_loop ()
            | Some '}' when looking "}}" ->
                adv ();
                adv ();
                Buffer.add_char buf '}';
                value_loop ()
            | Some '{' ->
                flush_text ();
                parts := Ast.A_expr (enclosed_expr ()) :: !parts;
                value_loop ()
            | Some '&' ->
                let stop =
                  match String.index_from_opt src lx.Lexer.pos ';' with
                  | Some i -> i
                  | None -> error "unterminated entity"
                in
                let ent = String.sub src (lx.Lexer.pos + 1) (stop - lx.Lexer.pos - 1) in
                Buffer.add_string buf
                  (match ent with
                  | "lt" -> "<"
                  | "gt" -> ">"
                  | "amp" -> "&"
                  | "quot" -> "\""
                  | "apos" -> "'"
                  | e -> error "unknown entity &%s;" e);
                lx.Lexer.pos <- stop + 1;
                value_loop ()
            | Some c ->
                adv ();
                Buffer.add_char buf c;
                value_loop ()
          in
          value_loop ();
          flush_text ();
          let parts = List.rev !parts in
          (if apfx = "xmlns" then
             match parts with
             | [ Ast.A_text uri ] -> ns_decls := (alocal, uri) :: !ns_decls
             | [] -> ns_decls := (alocal, "") :: !ns_decls
             | _ -> error "namespace declaration must be a literal"
           else if apfx = "" && alocal = "xmlns" then
             match parts with
             | [ Ast.A_text uri ] -> ns_decls := ("", uri) :: !ns_decls
             | [] -> ns_decls := ("", "") :: !ns_decls
             | _ -> error "namespace declaration must be a literal"
           else attrs := (apfx, alocal, parts) :: !attrs);
          attr_loop ()
      | _ -> ()
    in
    attr_loop ();
    (* namespace scoping: temporarily extend the parser's env *)
    let saved_ns = p.namespaces and saved_default = p.default_elem_ns in
    List.iter
      (fun (pfx, uri) ->
        if pfx = "" then p.default_elem_ns <- uri
        else p.namespaces <- (pfx, uri) :: p.namespaces)
      !ns_decls;
    let name = elem_qname p (prefix, local) in
    let resolved_attrs =
      List.rev_map
        (fun (apfx, alocal, parts) ->
          let uri = if apfx = "" then "" else resolve_prefix p apfx in
          (Qname.make ~prefix:apfx ~uri alocal, parts))
        !attrs
    in
    skip_ws ();
    let result =
      if looking "/>" then (
        adv ();
        adv ();
        Ast.Elem_ctor (name, resolved_attrs, []))
      else (
        expect_ch '>';
        let content = parse_content () in
        (* </name> *)
        expect_ch '<';
        expect_ch '/';
        let cpfx, clocal = read_name () in
        if cpfx <> prefix || clocal <> local then
          error "mismatched constructor end tag </%s:%s>" cpfx clocal;
        skip_ws ();
        expect_ch '>';
        Ast.Elem_ctor (name, resolved_attrs, content))
    in
    p.namespaces <- saved_ns;
    p.default_elem_ns <- saved_default;
    result
  and parse_content () =
    let items = ref [] in
    let buf = Buffer.create 32 in
    let flush_text () =
      let s = Buffer.contents buf in
      Buffer.clear buf;
      let keep =
        p.boundary_space
        || String.exists (fun c -> not (Lexer.is_space c)) s
      in
      if s <> "" && keep then
        items := Ast.Text_ctor (Ast.Literal (Xs.String s)) :: !items
    in
    let rec loop () =
      if looking "</" then flush_text ()
      else if looking "<!--" then (
        flush_text ();
        lx.Lexer.pos <- lx.Lexer.pos + 4;
        let start = lx.Lexer.pos in
        let rec find i =
          if i + 3 > String.length src then error "unterminated comment"
          else if String.sub src i 3 = "-->" then i
          else find (i + 1)
        in
        let stop = find start in
        items :=
          Ast.Comment_ctor
            (Ast.Literal (Xs.String (String.sub src start (stop - start))))
          :: !items;
        lx.Lexer.pos <- stop + 3;
        loop ())
      else if looking "<" then (
        flush_text ();
        items := parse_elem () :: !items;
        loop ())
      else if looking "{{" then (
        adv ();
        adv ();
        Buffer.add_char buf '{';
        loop ())
      else if looking "}}" then (
        adv ();
        adv ();
        Buffer.add_char buf '}';
        loop ())
      else if looking "{" then (
        flush_text ();
        items := enclosed_expr () :: !items;
        loop ())
      else
        match cur () with
        | None -> error "unterminated element constructor"
        | Some '&' ->
            let stop =
              match String.index_from_opt src lx.Lexer.pos ';' with
              | Some i -> i
              | None -> error "unterminated entity"
            in
            let ent = String.sub src (lx.Lexer.pos + 1) (stop - lx.Lexer.pos - 1) in
            Buffer.add_string buf
              (match ent with
              | "lt" -> "<"
              | "gt" -> ">"
              | "amp" -> "&"
              | "quot" -> "\""
              | "apos" -> "'"
              | e -> error "unknown entity &%s;" e);
            lx.Lexer.pos <- stop + 1;
            loop ()
        | Some c ->
            adv ();
            Buffer.add_char buf c;
            loop ()
    in
    loop ();
    List.rev !items
  in
  let e = parse_elem () in
  Lexer.reprime p.lx;
  e

(* ------------------------------------------------------------------ *)
(* Prolog and modules                                                  *)
(* ------------------------------------------------------------------ *)

let parse_prolog p =
  let decls = ref [] in
  let rec loop () =
    if is_name p "declare" then (
      advance p;
      (if eat_name p "namespace" then (
         match tok p with
         | Lexer.Name ("", pfx) ->
             advance p;
             expect_sym p "=";
             let uri = expect_string p in
             p.namespaces <- (pfx, uri) :: p.namespaces;
             decls := Ast.P_namespace (pfx, uri) :: !decls
         | t -> error "expected prefix, found %s" (Lexer.token_to_string t))
       else if eat_name p "default" then
         if eat_name p "element" then (
           expect_name p "namespace";
           let uri = expect_string p in
           p.default_elem_ns <- uri;
           decls := Ast.P_default_element_ns uri :: !decls)
         else (
           expect_name p "function";
           expect_name p "namespace";
           let uri = expect_string p in
           p.default_fn_ns <- uri;
           decls := Ast.P_default_function_ns uri :: !decls)
       else if eat_name p "boundary-space" then (
         let preserve = eat_name p "preserve" in
         if not preserve then expect_name p "strip";
         p.boundary_space <- preserve;
         decls := Ast.P_boundary_space preserve :: !decls)
       else if eat_name p "option" then (
         match tok p with
         | Lexer.Name (pfx, local) ->
             advance p;
             let q = fn_qname p (pfx, local) in
             let v = expect_string p in
             decls := Ast.P_option (q, v) :: !decls
         | t -> error "expected option name, found %s" (Lexer.token_to_string t))
       else if eat_name p "variable" then (
         let v = expect_var p in
         if eat_name p "as" then ignore (parse_seq_type p);
         expect_sym p ":=";
         let e = parse_expr_single p in
         decls := Ast.P_var (v, e) :: !decls)
       else
         let updating = eat_name p "updating" in
         if eat_name p "function" then (
           let fname =
             match tok p with
             | Lexer.Name (pfx, local) ->
                 advance p;
                 fn_qname p (pfx, local)
             | t -> error "expected function name, found %s" (Lexer.token_to_string t)
           in
           expect_sym p "(";
           let params =
             if eat_sym p ")" then []
             else
               let rec more acc =
                 let v = expect_var p in
                 let ty =
                   if eat_name p "as" then Some (parse_seq_type p) else None
                 in
                 if eat_sym p "," then more ((v, ty) :: acc)
                 else (
                   expect_sym p ")";
                   List.rev ((v, ty) :: acc))
               in
               more []
           in
           let ret =
             if eat_name p "as" then Some (parse_seq_type p) else None
           in
           let body =
             if eat_name p "external" then None
             else (
               expect_sym p "{";
               let e = parse_expr p in
               expect_sym p "}";
               Some e)
           in
           decls :=
             Ast.P_function
               { fn_name = fname; fn_params = params; fn_return = ret;
                 fn_body = body; fn_updating = updating }
             :: !decls)
         else error "unknown declaration after 'declare'");
      expect_sym p ";";
      loop ())
    else if is_name p "import" then (
      advance p;
      expect_name p "module";
      let pfx =
        if eat_name p "namespace" then (
          match tok p with
          | Lexer.Name ("", pfx) ->
              advance p;
              expect_sym p "=";
              Some pfx
          | t -> error "expected prefix, found %s" (Lexer.token_to_string t))
        else None
      in
      let uri = expect_string p in
      (match pfx with
      | Some pfx -> p.namespaces <- (pfx, uri) :: p.namespaces
      | None -> ());
      let at = if eat_name p "at" then Some (expect_string p) else None in
      decls := Ast.P_import_module (pfx, uri, at) :: !decls;
      expect_sym p ";";
      loop ())
  in
  loop ();
  List.rev !decls

(** Parse a complete main or library module. *)
let parse_prog src =
  let p = make src in
  (* optional version declaration *)
  if is_name p "xquery" then (
    advance p;
    expect_name p "version";
    ignore (expect_string p);
    if eat_name p "encoding" then ignore (expect_string p);
    expect_sym p ";");
  let module_decl =
    if is_name p "module" then (
      advance p;
      expect_name p "namespace";
      match tok p with
      | Lexer.Name ("", pfx) ->
          advance p;
          expect_sym p "=";
          let uri = expect_string p in
          expect_sym p ";";
          p.namespaces <- (pfx, uri) :: p.namespaces;
          Some (pfx, uri)
      | t -> error "expected module prefix, found %s" (Lexer.token_to_string t))
    else None
  in
  let prolog = parse_prolog p in
  let body =
    match module_decl with
    | Some _ ->
        if tok p <> Lexer.Eof then
          error "library module has trailing content: %s"
            (Lexer.token_to_string (tok p));
        None
    | None ->
        let e = parse_expr p in
        if tok p <> Lexer.Eof then
          error "trailing content after query body: %s"
            (Lexer.token_to_string (tok p));
        Some e
  in
  { Ast.module_decl; prolog; body }

(** Parse a standalone expression (tests, generated queries). *)
let parse_expression src =
  let p = make src in
  let e = parse_expr p in
  if tok p <> Lexer.Eof then
    error "trailing content: %s" (Lexer.token_to_string (tok p));
  e
