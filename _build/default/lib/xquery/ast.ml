(** Abstract syntax for the XQuery subset + the XRPC extension.

    The subset covers everything the paper's queries use: FLWOR with
    [order by], quantifiers, full path expressions with predicates, direct
    and computed constructors, typeswitch/instance of/cast, modules with
    user-defined (possibly updating) functions, XQUF update expressions, and
    the new [execute at {Expr}{FunApp(...)}] primary expression. *)

open Xrpc_xml

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Attribute
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Attribute -> "attribute"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"

type node_test =
  | Name_test of Qname.t
  | Any_name  (** [*] *)
  | Ns_wildcard of string  (** [prefix:*], uri resolved *)
  | Local_wildcard of string  (** [*:local] *)
  | Kind_test of kind_test

and kind_test =
  | K_node
  | K_text
  | K_comment
  | K_pi of string option
  | K_element of Qname.t option
  | K_attribute of Qname.t option
  | K_document

type occurrence = Exactly_one | Zero_or_one | Zero_or_more | One_or_more

type item_type =
  | It_atomic of Xs.typ
  | It_node
  | It_element of Qname.t option
  | It_attribute of Qname.t option
  | It_text
  | It_comment
  | It_pi
  | It_document
  | It_item

type seq_type = Seq_empty | Seq of item_type * occurrence

(** Where an XQUF insert puts the source nodes relative to the target. *)
type insert_target = Into | As_first | As_last | Before | After

type comparison =
  (* value comparisons *)
  | V_eq | V_ne | V_lt | V_le | V_gt | V_ge
  (* general comparisons *)
  | G_eq | G_ne | G_lt | G_le | G_gt | G_ge
  (* node comparisons *)
  | N_is | N_before | N_after

type arith = Add | Sub | Mul | Div | Idiv | Mod

type expr =
  | Literal of Xs.t
  | Var of Qname.t
  | Context_item  (** [.] *)
  | Root  (** leading [/] — root of the context node's tree *)
  | Sequence of expr list  (** comma operator; [Sequence []] is [()] *)
  | Range of expr * expr  (** [e1 to e2] *)
  | Arith of arith * expr * expr
  | Neg of expr
  | Compare of comparison * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Union of expr * expr  (** [e1 | e2] *)
  | Intersect of expr * expr
  | Except of expr * expr
  | If of expr * expr * expr
  | Flwor of clause list * (expr * bool) list * expr
      (** clauses, order-by specs (expr, descending?), return *)
  | Quantified of [ `Some | `Every ] * (Qname.t * expr) list * expr
  | Path of expr * expr
      (** [e1 / e2]: evaluate [e2] with each node of [e1] as context *)
  | Step of axis * node_test * expr list  (** axis step with predicates *)
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Call of Qname.t * expr list
  | Execute_at of expr * Qname.t * expr list  (** the XRPC extension *)
  | Elem_ctor of Qname.t * (Qname.t * attr_content list) list * expr list
      (** direct constructor: name, attributes, content *)
  | Comp_elem of expr * expr  (** computed element: name expr, content *)
  | Comp_attr of expr * expr
  | Text_ctor of expr
  | Comment_ctor of expr
  | Doc_ctor of expr
  | Typeswitch of expr * (seq_type * Qname.t option * expr) list * (Qname.t option * expr)
  | Instance_of of expr * seq_type
  | Cast_as of expr * Xs.typ * bool  (** [bool]: allow empty ([?]) *)
  | Castable_as of expr * Xs.typ * bool
  | Treat_as of expr * seq_type
  (* XQUF update expressions *)
  | Insert of insert_target * expr * expr  (** position, source, target *)
  | Delete of expr
  | Replace_node of expr * expr  (** target, replacement *)
  | Replace_value of expr * expr
  | Rename_node of expr * expr

and clause =
  | For of Qname.t * Qname.t option * expr  (** var, positional var, in *)
  | Let of Qname.t * expr
  | Where of expr

and attr_content = A_text of string | A_expr of expr

type function_decl = {
  fn_name : Qname.t;
  fn_params : (Qname.t * seq_type option) list;
  fn_return : seq_type option;
  fn_body : expr option;  (** [None] for [external] *)
  fn_updating : bool;
}

type prolog_decl =
  | P_namespace of string * string  (** prefix, uri *)
  | P_default_element_ns of string
  | P_default_function_ns of string
  | P_import_module of string option * string * string option
      (** prefix, uri, at-hint *)
  | P_var of Qname.t * expr
  | P_function of function_decl
  | P_option of Qname.t * string
  | P_boundary_space of bool

type prog = {
  module_decl : (string * string) option;  (** library module: prefix, uri *)
  prolog : prolog_decl list;
  body : expr option;  (** [None] for library modules *)
}

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for plan/AST debugging and tests)                  *)
(* ------------------------------------------------------------------ *)

let rec pp_expr fmt e =
  let open Format in
  match e with
  | Literal a -> Xs.pp fmt a
  | Var q -> fprintf fmt "$%s" (Qname.to_string q)
  | Context_item -> pp_print_string fmt "."
  | Root -> pp_print_string fmt "fn:root(.)"
  | Sequence es ->
      fprintf fmt "(%a)"
        (pp_print_list ~pp_sep:(fun f () -> pp_print_string f ", ") pp_expr)
        es
  | Range (a, b) -> fprintf fmt "(%a to %a)" pp_expr a pp_expr b
  | Arith (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Idiv -> "idiv" | Mod -> "mod" in
      fprintf fmt "(%a %s %a)" pp_expr a s pp_expr b
  | Neg a -> fprintf fmt "(-%a)" pp_expr a
  | Compare (_, a, b) -> fprintf fmt "(%a <=> %a)" pp_expr a pp_expr b
  | And (a, b) -> fprintf fmt "(%a and %a)" pp_expr a pp_expr b
  | Or (a, b) -> fprintf fmt "(%a or %a)" pp_expr a pp_expr b
  | Union (a, b) -> fprintf fmt "(%a | %a)" pp_expr a pp_expr b
  | Intersect (a, b) -> fprintf fmt "(%a intersect %a)" pp_expr a pp_expr b
  | Except (a, b) -> fprintf fmt "(%a except %a)" pp_expr a pp_expr b
  | If (c, t, e) -> fprintf fmt "if (%a) then %a else %a" pp_expr c pp_expr t pp_expr e
  | Flwor (cs, _, ret) ->
      fprintf fmt "FLWOR[%d clauses] return %a" (List.length cs) pp_expr ret
  | Quantified (q, _, sat) ->
      fprintf fmt "%s .. satisfies %a"
        (match q with `Some -> "some" | `Every -> "every")
        pp_expr sat
  | Path (a, b) -> fprintf fmt "%a/%a" pp_expr a pp_expr b
  | Step (ax, t, preds) ->
      fprintf fmt "%s::%s%s" (axis_name ax)
        (match t with
        | Name_test q -> Qname.to_string q
        | Any_name -> "*"
        | Ns_wildcard p -> p ^ ":*"
        | Local_wildcard l -> "*:" ^ l
        | Kind_test _ -> "kind()")
        (if preds = [] then "" else "[..]")
  | Filter (e, _) -> fprintf fmt "%a[..]" pp_expr e
  | Call (q, args) -> fprintf fmt "%s(#%d)" (Qname.to_string q) (List.length args)
  | Execute_at (d, f, args) ->
      fprintf fmt "execute at {%a} {%s(#%d)}" pp_expr d (Qname.to_string f)
        (List.length args)
  | Elem_ctor (q, _, _) -> fprintf fmt "<%s>..." (Qname.to_string q)
  | Comp_elem _ -> pp_print_string fmt "element {..} {..}"
  | Comp_attr _ -> pp_print_string fmt "attribute {..} {..}"
  | Text_ctor _ -> pp_print_string fmt "text {..}"
  | Comment_ctor _ -> pp_print_string fmt "comment {..}"
  | Doc_ctor _ -> pp_print_string fmt "document {..}"
  | Typeswitch _ -> pp_print_string fmt "typeswitch"
  | Instance_of _ -> pp_print_string fmt "instance of"
  | Cast_as _ -> pp_print_string fmt "cast as"
  | Castable_as _ -> pp_print_string fmt "castable as"
  | Treat_as _ -> pp_print_string fmt "treat as"
  | Insert _ -> pp_print_string fmt "insert"
  | Delete _ -> pp_print_string fmt "delete"
  | Replace_node _ | Replace_value _ -> pp_print_string fmt "replace"
  | Rename_node _ -> pp_print_string fmt "rename"

let expr_to_string e = Format.asprintf "%a" pp_expr e

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

module Var_set = Set.Make (String)

let var_set_key (q : Qname.t) = q.Qname.uri ^ "}" ^ q.Qname.local

(** Free variable references of an expression (expanded names), used by the
    evaluator to hoist loop-invariant FLWOR clauses. *)
let rec free_vars (e : expr) : Var_set.t =
  let open Var_set in
  let ( ++ ) = union in
  match e with
  | Literal _ | Context_item | Root -> empty
  | Var q -> singleton (var_set_key q)
  | Sequence es -> List.fold_left (fun a e -> a ++ free_vars e) empty es
  | Range (a, b) | Arith (_, a, b) | Compare (_, a, b) | And (a, b)
  | Or (a, b) | Union (a, b) | Intersect (a, b) | Except (a, b)
  | Path (a, b) | Comp_elem (a, b)
  | Comp_attr (a, b) | Insert (_, a, b) | Replace_node (a, b)
  | Replace_value (a, b) | Rename_node (a, b) ->
      free_vars a ++ free_vars b
  | Neg a | Text_ctor a | Comment_ctor a | Doc_ctor a | Delete a
  | Instance_of (a, _) | Cast_as (a, _, _) | Castable_as (a, _, _)
  | Treat_as (a, _) ->
      free_vars a
  | If (c, t, e) -> free_vars c ++ free_vars t ++ free_vars e
  | Flwor (clauses, order_by, ret) ->
      let rec go bound = function
        | [] ->
            let inner =
              List.fold_left
                (fun a (e, _) -> a ++ free_vars e)
                (free_vars ret) order_by
            in
            diff inner bound
        | For (v, posv, e) :: rest ->
            let bound' =
              add (var_set_key v)
                (match posv with
                | Some p -> add (var_set_key p) bound
                | None -> bound)
            in
            diff (free_vars e) bound ++ go bound' rest
        | Let (v, e) :: rest ->
            diff (free_vars e) bound ++ go (add (var_set_key v) bound) rest
        | Where e :: rest -> diff (free_vars e) bound ++ go bound rest
      in
      go empty clauses
  | Quantified (_, binds, sat) ->
      let rec go bound = function
        | [] -> diff (free_vars sat) bound
        | (v, e) :: rest ->
            diff (free_vars e) bound ++ go (add (var_set_key v) bound) rest
      in
      go empty binds
  | Step (_, _, preds) ->
      List.fold_left (fun a p -> a ++ free_vars p) empty preds
  | Filter (e, preds) ->
      List.fold_left (fun a p -> a ++ free_vars p) (free_vars e) preds
  | Call (_, args) -> List.fold_left (fun a e -> a ++ free_vars e) empty args
  | Execute_at (d, _, args) ->
      List.fold_left (fun a e -> a ++ free_vars e) (free_vars d) args
  | Elem_ctor (_, attrs, content) ->
      let from_attrs =
        List.fold_left
          (fun a (_, parts) ->
            List.fold_left
              (fun a p ->
                match p with A_expr e -> a ++ free_vars e | A_text _ -> a)
              a parts)
          empty attrs
      in
      List.fold_left (fun a e -> a ++ free_vars e) from_attrs content
  | Typeswitch (op, cases, (dv, de)) ->
      let case_vars =
        List.fold_left
          (fun a (_, v, e) ->
            a
            ++
            match v with
            | Some v -> remove (var_set_key v) (free_vars e)
            | None -> free_vars e)
          empty cases
      in
      let default_vars =
        match dv with
        | Some v -> remove (var_set_key v) (free_vars de)
        | None -> free_vars de
      in
      free_vars op ++ case_vars ++ default_vars
