(** Hand-written tokenizer for the XQuery subset.

    XQuery keywords are context-sensitive, so the lexer emits plain names
    and lets the recursive-descent parser decide.  Direct element
    constructors are not tokenized here at all: the parser detects a [<] in
    primary-expression position, rewinds to the token's source offset, and
    parses the constructor at character level (see {!Parser}). *)

type token =
  | Name of string * string  (** prefix (possibly ""), local *)
  | Star_colon of string  (** [*:local] *)
  | Ns_star of string  (** [prefix:*] *)
  | Int_lit of int
  | Dec_lit of float
  | Dbl_lit of float
  | Str_lit of string
  | Var of string * string  (** [$prefix:local] *)
  | Sym of string
  | Eof

exception Lex_error of string

type t = {
  src : string;
  mutable pos : int;
  mutable tok : token;  (** current lookahead *)
  mutable tok_start : int;  (** source offset where [tok] begins *)
}

let error fmt = Printf.ksprintf (fun s -> raise (Lex_error s)) fmt

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let peek_at lx k =
  if lx.pos + k < String.length lx.src then Some lx.src.[lx.pos + k] else None

let peek lx = peek_at lx 0

(* skip whitespace and (: nested comments :) *)
let rec skip_trivia lx =
  (match peek lx with
  | Some c when is_space c ->
      lx.pos <- lx.pos + 1;
      skip_trivia lx
  | Some '(' when peek_at lx 1 = Some ':' ->
      lx.pos <- lx.pos + 2;
      let depth = ref 1 in
      while !depth > 0 do
        match (peek lx, peek_at lx 1) with
        | Some '(', Some ':' ->
            depth := !depth + 1;
            lx.pos <- lx.pos + 2
        | Some ':', Some ')' ->
            depth := !depth - 1;
            lx.pos <- lx.pos + 2
        | Some _, _ -> lx.pos <- lx.pos + 1
        | None, _ -> error "unterminated comment"
      done;
      skip_trivia lx
  | _ -> ())

let read_ncname lx =
  let start = lx.pos in
  (match peek lx with
  | Some c when is_name_start c -> lx.pos <- lx.pos + 1
  | _ -> error "expected name at offset %d" lx.pos);
  while lx.pos < String.length lx.src && is_name_char lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  String.sub lx.src start (lx.pos - start)

let read_string_lit lx quote =
  lx.pos <- lx.pos + 1;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | None -> error "unterminated string literal"
    | Some c when c = quote ->
        lx.pos <- lx.pos + 1;
        (* doubled quote = escaped quote *)
        if peek lx = Some quote then (
          Buffer.add_char buf quote;
          lx.pos <- lx.pos + 1;
          loop ())
    | Some '&' ->
        (* predefined entity references in string literals *)
        let stop =
          match String.index_from_opt lx.src lx.pos ';' with
          | Some i -> i
          | None -> error "unterminated entity reference"
        in
        let ent = String.sub lx.src (lx.pos + 1) (stop - lx.pos - 1) in
        Buffer.add_string buf
          (match ent with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | e -> error "unknown entity &%s;" e);
        lx.pos <- stop + 1;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        lx.pos <- lx.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let read_number lx =
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  let has_dot =
    peek lx = Some '.'
    && match peek_at lx 1 with Some c -> is_digit c | None -> false
  in
  if has_dot then (
    lx.pos <- lx.pos + 1;
    while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done);
  let has_exp =
    match peek lx with Some ('e' | 'E') -> true | _ -> false
  in
  if has_exp then begin
    lx.pos <- lx.pos + 1;
    (match peek lx with
    | Some ('+' | '-') -> lx.pos <- lx.pos + 1
    | _ -> ());
    while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done
  end;
  let s = String.sub lx.src start (lx.pos - start) in
  if has_exp then Dbl_lit (float_of_string s)
  else if has_dot then Dec_lit (float_of_string s)
  else Int_lit (int_of_string s)

let two_char_syms =
  [ ":="; "!="; "<="; ">="; "<<"; ">>"; "//"; ".."; "::" ]

let scan lx =
  skip_trivia lx;
  lx.tok_start <- lx.pos;
  match peek lx with
  | None -> Eof
  | Some c when is_digit c -> read_number lx
  | Some '.' when (match peek_at lx 1 with Some d -> is_digit d | None -> false)
    ->
      read_number lx
  | Some (('"' | '\'') as q) -> Str_lit (read_string_lit lx q)
  | Some '$' ->
      lx.pos <- lx.pos + 1;
      skip_trivia lx;
      let a = read_ncname lx in
      if peek lx = Some ':' && peek_at lx 1 <> Some ':' then (
        lx.pos <- lx.pos + 1;
        let b = read_ncname lx in
        Var (a, b))
      else Var ("", a)
  | Some '*' when peek_at lx 1 = Some ':'
                  && (match peek_at lx 2 with
                     | Some c -> is_name_start c
                     | None -> false) ->
      lx.pos <- lx.pos + 2;
      Star_colon (read_ncname lx)
  | Some c when is_name_start c ->
      let a = read_ncname lx in
      if peek lx = Some ':' && peek_at lx 1 <> Some ':'
         && peek_at lx 1 <> Some '=' then (
        match peek_at lx 1 with
        | Some '*' ->
            lx.pos <- lx.pos + 2;
            Ns_star a
        | Some c2 when is_name_start c2 ->
            lx.pos <- lx.pos + 1;
            let b = read_ncname lx in
            Name (a, b)
        | _ -> Name ("", a))
      else Name ("", a)
  | Some _ ->
      let two =
        if lx.pos + 2 <= String.length lx.src then
          String.sub lx.src lx.pos 2
        else ""
      in
      if List.mem two two_char_syms then (
        lx.pos <- lx.pos + 2;
        Sym two)
      else
        let c = lx.src.[lx.pos] in
        lx.pos <- lx.pos + 1;
        Sym (String.make 1 c)

let make src =
  let lx = { src; pos = 0; tok = Eof; tok_start = 0 } in
  lx.tok <- scan lx;
  lx

(** Advance to the next token. *)
let next lx = lx.tok <- scan lx

(** Rewind the stream so the current token's first character is unread —
    used by the parser to hand direct constructors to a char-level parser. *)
let rewind_to_token lx = lx.pos <- lx.tok_start

(** Re-prime the lookahead after external char-level parsing moved [pos]. *)
let reprime lx = lx.tok <- scan lx

let token_to_string = function
  | Name ("", l) -> l
  | Name (p, l) -> p ^ ":" ^ l
  | Star_colon l -> "*:" ^ l
  | Ns_star p -> p ^ ":*"
  | Int_lit i -> string_of_int i
  | Dec_lit f | Dbl_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "%S" s
  | Var ("", l) -> "$" ^ l
  | Var (p, l) -> "$" ^ p ^ ":" ^ l
  | Sym s -> s
  | Eof -> "<eof>"
