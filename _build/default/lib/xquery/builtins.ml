(** Built-in function library ([fn:] namespace plus the [xrpc:host] /
    [xrpc:path] helpers of §5).

    Each builtin is a function of the dynamic context and the evaluated
    argument sequences.  Lookup is by (namespace, local name, arity).
    [xs:TYPE(...)] constructor functions are handled directly by the
    evaluator as casts. *)

open Xrpc_xml

type impl = Context.t -> Xdm.sequence list -> Xdm.sequence

let registry : (string * string * int, impl) Hashtbl.t = Hashtbl.create 128

let register ?(uri = Qname.ns_fn) local arity impl =
  Hashtbl.replace registry (uri, local, arity) impl

let find (q : Qname.t) arity =
  match Hashtbl.find_opt registry (q.Qname.uri, q.Qname.local, arity) with
  | Some f -> Some f
  | None ->
      (* the fn: namespace is also reachable with no prefix *)
      if q.Qname.uri = "" then
        Hashtbl.find_opt registry (Qname.ns_fn, q.Qname.local, arity)
      else None

let dyn = Xdm.dyn_error

let one_string = function
  | [] -> ""
  | seq -> Xs.to_string (Xdm.one_atom ~what:"string" seq)

let opt_string = function [] -> None | seq -> Some (one_string seq)

let one_int seq =
  match Xdm.one_atom ~what:"integer" seq with
  | Xs.Integer i -> i
  | a -> int_of_float (Xs.to_float a)

let one_node = function
  | [ Xdm.Node n ] -> n
  | [ _ ] -> dyn "expected a node"
  | [] -> dyn "expected a node, got empty sequence"
  | _ -> dyn "expected a single node"

let num_seq seq = List.map Xs.to_float (Xdm.atomize seq)

(* ---------------------------------------------------------------- *)

let () =
  (* accessors *)
  register "doc" 1 (fun ctx args ->
      match List.nth args 0 with
      | [] -> []
      | seq ->
          let uri = one_string seq in
          [ Xdm.Node (Store.root (ctx.Context.doc_resolver uri)) ]);
  register "doc-available" 1 (fun ctx args ->
      match opt_string (List.nth args 0) with
      | None -> [ Xdm.bool false ]
      | Some uri -> (
          try
            ignore (ctx.Context.doc_resolver uri);
            [ Xdm.bool true ]
          with _ -> [ Xdm.bool false ]));
  register "root" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> []
      | seq ->
          let n = one_node seq in
          [ Xdm.Node (Store.root n.Store.store) ]);
  register "root" 0 (fun ctx _ ->
      let n = Context.context_node ctx in
      [ Xdm.Node (Store.root n.Store.store) ]);
  register "position" 0 (fun ctx _ -> [ Xdm.int ctx.Context.ctx_pos ]);
  register "last" 0 (fun ctx _ -> [ Xdm.int ctx.Context.ctx_size ]);
  register "string" 0 (fun ctx _ ->
      match ctx.Context.ctx_item with
      | Some i -> [ Xdm.str (Xdm.string_value i) ]
      | None -> dyn "fn:string(): no context item");
  register "string" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> [ Xdm.str "" ]
      | [ i ] -> [ Xdm.str (Xdm.string_value i) ]
      | _ -> dyn "fn:string(): more than one item");
  register "data" 1 (fun _ args ->
      List.map (fun a -> Xdm.Atomic a) (Xdm.atomize (List.nth args 0)));
  register "number" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> [ Xdm.Atomic (Xs.Double Float.nan) ]
      | seq -> (
          try [ Xdm.Atomic (Xs.Double (Xs.to_float (Xdm.one_atom ~what:"number" seq))) ]
          with _ -> [ Xdm.Atomic (Xs.Double Float.nan) ]));
  register "name" 0 (fun ctx _ ->
      let n = Context.context_node ctx in
      [ Xdm.str (match Store.name n with Some q -> Qname.to_string q | None -> "") ]);
  register "name" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> [ Xdm.str "" ]
      | seq ->
          let n = one_node seq in
          [ Xdm.str (match Store.name n with Some q -> Qname.to_string q | None -> "") ]);
  register "local-name" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> [ Xdm.str "" ]
      | seq ->
          let n = one_node seq in
          [ Xdm.str (match Store.name n with Some q -> q.Qname.local | None -> "") ]);
  register "namespace-uri" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> [ Xdm.str "" ]
      | seq ->
          let n = one_node seq in
          [ Xdm.str (match Store.name n with Some q -> q.Qname.uri | None -> "") ]);

  (* boolean *)
  register "true" 0 (fun _ _ -> [ Xdm.bool true ]);
  register "false" 0 (fun _ _ -> [ Xdm.bool false ]);
  register "boolean" 1 (fun _ args -> [ Xdm.bool (Xdm.ebv (List.nth args 0)) ]);
  register "not" 1 (fun _ args -> [ Xdm.bool (not (Xdm.ebv (List.nth args 0))) ]);

  (* sequences *)
  register "count" 1 (fun _ args -> [ Xdm.int (List.length (List.nth args 0)) ]);
  register "empty" 1 (fun _ args -> [ Xdm.bool (List.nth args 0 = []) ]);
  register "exists" 1 (fun _ args -> [ Xdm.bool (List.nth args 0 <> []) ]);
  register "zero-or-one" 1 (fun _ args ->
      match List.nth args 0 with
      | ([] | [ _ ]) as s -> s
      | _ -> dyn "FORG0003: zero-or-one() with more than one item");
  register "exactly-one" 1 (fun _ args ->
      match List.nth args 0 with
      | [ _ ] as s -> s
      | _ -> dyn "FORG0005: exactly-one() without exactly one item");
  register "one-or-more" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> dyn "FORG0004: one-or-more() with empty sequence"
      | s -> s);
  register "reverse" 1 (fun _ args -> List.rev (List.nth args 0));
  register "distinct-values" 1 (fun _ args ->
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun a ->
          let key = (Xs.type_name (Xs.type_of a), Xs.to_string a) in
          let key =
            if Xs.is_numeric a then ("num", Xs.float_to_string (Xs.to_float a))
            else key
          in
          if Hashtbl.mem seen key then None
          else (
            Hashtbl.add seen key ();
            Some (Xdm.Atomic a)))
        (Xdm.atomize (List.nth args 0)));
  register "subsequence" 2 (fun _ args ->
      let seq = List.nth args 0 in
      let start = one_int (List.nth args 1) in
      List.filteri (fun i _ -> i + 1 >= start) seq);
  register "subsequence" 3 (fun _ args ->
      let seq = List.nth args 0 in
      let start = one_int (List.nth args 1) in
      let len = one_int (List.nth args 2) in
      List.filteri (fun i _ -> i + 1 >= start && i + 1 < start + len) seq);
  register "insert-before" 3 (fun _ args ->
      let seq = List.nth args 0 in
      let pos = max 1 (one_int (List.nth args 1)) in
      let ins = List.nth args 2 in
      let rec go i = function
        | rest when i = pos -> ins @ rest
        | [] -> ins
        | x :: rest -> x :: go (i + 1) rest
      in
      go 1 seq);
  register "remove" 2 (fun _ args ->
      let seq = List.nth args 0 in
      let pos = one_int (List.nth args 1) in
      List.filteri (fun i _ -> i + 1 <> pos) seq);
  register "index-of" 2 (fun _ args ->
      let seq = Xdm.atomize (List.nth args 0) in
      let target = Xdm.one_atom ~what:"search value" (List.nth args 1) in
      List.filteri (fun _ _ -> true) seq
      |> List.mapi (fun i a -> (i + 1, a))
      |> List.filter_map (fun (i, a) ->
             if (try Xs.equal_values a target with Xs.Type_error _ -> false)
             then Some (Xdm.int i)
             else None));
  register "deep-equal" 2 (fun _ args ->
      [ Xdm.bool (Xdm.deep_equal (List.nth args 0) (List.nth args 1)) ]);

  (* aggregates *)
  register "sum" 1 (fun _ args ->
      let xs = num_seq (List.nth args 0) in
      let s = List.fold_left ( +. ) 0. xs in
      if Float.is_integer s then [ Xdm.int (int_of_float s) ]
      else [ Xdm.Atomic (Xs.Double s) ]);
  register "avg" 1 (fun _ args ->
      match num_seq (List.nth args 0) with
      | [] -> []
      | xs ->
          [ Xdm.Atomic
              (Xs.Double (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))) ]);
  register "min" 1 (fun _ args ->
      match num_seq (List.nth args 0) with
      | [] -> []
      | x :: xs -> [ Xdm.Atomic (Xs.Double (List.fold_left min x xs)) ]);
  register "max" 1 (fun _ args ->
      match num_seq (List.nth args 0) with
      | [] -> []
      | x :: xs -> [ Xdm.Atomic (Xs.Double (List.fold_left max x xs)) ]);

  (* numerics *)
  register "floor" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> []
      | seq -> (
          match Xdm.one_atom ~what:"number" seq with
          | Xs.Integer i -> [ Xdm.int i ]
          | a -> [ Xdm.Atomic (Xs.Double (Float.floor (Xs.to_float a))) ]));
  register "ceiling" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> []
      | seq -> (
          match Xdm.one_atom ~what:"number" seq with
          | Xs.Integer i -> [ Xdm.int i ]
          | a -> [ Xdm.Atomic (Xs.Double (Float.ceil (Xs.to_float a))) ]));
  register "round" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> []
      | seq -> (
          match Xdm.one_atom ~what:"number" seq with
          | Xs.Integer i -> [ Xdm.int i ]
          | a -> [ Xdm.Atomic (Xs.Double (Float.round (Xs.to_float a))) ]));
  register "abs" 1 (fun _ args ->
      match List.nth args 0 with
      | [] -> []
      | seq -> (
          match Xdm.one_atom ~what:"number" seq with
          | Xs.Integer i -> [ Xdm.int (abs i) ]
          | a -> [ Xdm.Atomic (Xs.Double (Float.abs (Xs.to_float a))) ]));

  (* strings *)
  for arity = 2 to 10 do
    register "concat" arity (fun _ args ->
        [ Xdm.str (String.concat "" (List.map one_string args)) ])
  done;
  register "string-join" 2 (fun _ args ->
      let parts = List.map Xs.to_string (Xdm.atomize (List.nth args 0)) in
      [ Xdm.str (String.concat (one_string (List.nth args 1)) parts) ]);
  register "string-length" 1 (fun _ args ->
      [ Xdm.int (String.length (one_string (List.nth args 0))) ]);
  register "substring" 2 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let start = one_int (List.nth args 1) in
      let from = max 0 (start - 1) in
      [ Xdm.str
          (if from >= String.length s then ""
           else String.sub s from (String.length s - from)) ]);
  register "substring" 3 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let start = one_int (List.nth args 1) in
      let len = one_int (List.nth args 2) in
      let from = max 0 (start - 1) in
      let upto = min (String.length s) (start - 1 + len) in
      [ Xdm.str (if upto <= from then "" else String.sub s from (upto - from)) ]);
  register "contains" 2 (fun _ args ->
      let s = one_string (List.nth args 0) and sub = one_string (List.nth args 1) in
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      [ Xdm.bool (n = 0 || go 0) ]);
  register "starts-with" 2 (fun _ args ->
      let s = one_string (List.nth args 0) and pre = one_string (List.nth args 1) in
      [ Xdm.bool
          (String.length pre <= String.length s
          && String.sub s 0 (String.length pre) = pre) ]);
  register "ends-with" 2 (fun _ args ->
      let s = one_string (List.nth args 0) and suf = one_string (List.nth args 1) in
      [ Xdm.bool
          (String.length suf <= String.length s
          && String.sub s (String.length s - String.length suf) (String.length suf)
             = suf) ]);
  register "substring-before" 2 (fun _ args ->
      let s = one_string (List.nth args 0) and sub = one_string (List.nth args 1) in
      let n = String.length sub in
      let rec go i =
        if i + n > String.length s then None
        else if String.sub s i n = sub then Some i
        else go (i + 1)
      in
      [ Xdm.str (match go 0 with Some i -> String.sub s 0 i | None -> "") ]);
  register "substring-after" 2 (fun _ args ->
      let s = one_string (List.nth args 0) and sub = one_string (List.nth args 1) in
      let n = String.length sub in
      let rec go i =
        if i + n > String.length s then None
        else if String.sub s i n = sub then Some (i + n)
        else go (i + 1)
      in
      [ Xdm.str
          (match go 0 with
          | Some i -> String.sub s i (String.length s - i)
          | None -> "") ]);
  register "upper-case" 1 (fun _ args ->
      [ Xdm.str (String.uppercase_ascii (one_string (List.nth args 0))) ]);
  register "lower-case" 1 (fun _ args ->
      [ Xdm.str (String.lowercase_ascii (one_string (List.nth args 0))) ]);
  register "normalize-space" 1 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let words =
        String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
        |> List.filter (fun w -> w <> "")
      in
      [ Xdm.str (String.concat " " words) ]);

  register "translate" 3 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let from = one_string (List.nth args 1) in
      let into = one_string (List.nth args 2) in
      let buf = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match String.index_opt from c with
          | Some i -> if i < String.length into then Buffer.add_char buf into.[i]
          | None -> Buffer.add_char buf c)
        s;
      [ Xdm.str (Buffer.contents buf) ]);
  register "string-to-codepoints" 1 (fun _ args ->
      let s = one_string (List.nth args 0) in
      List.init (String.length s) (fun i -> Xdm.int (Char.code s.[i])));
  register "codepoints-to-string" 1 (fun _ args ->
      let codes = List.map (fun a -> int_of_float (Xs.to_float a))
          (Xdm.atomize (List.nth args 0)) in
      [ Xdm.str (String.concat "" (List.map (fun c -> String.make 1 (Char.chr (c land 255))) codes)) ]);
  register "compare" 2 (fun _ args ->
      [ Xdm.int (compare (one_string (List.nth args 0)) (one_string (List.nth args 1))) ]);

  (* regular expressions — XPath regex syntax approximated by OCaml's Str
     (covers the common subset: classes, alternation, +, *, ?, anchors) *)
  let compile_re pattern =
    (* translate a few XPath-isms Str spells differently *)
    let buf = Buffer.create (String.length pattern + 8) in
    let n = String.length pattern in
    let i = ref 0 in
    while !i < n do
      (match pattern.[!i] with
      | '(' -> Buffer.add_string buf "\\("
      | ')' -> Buffer.add_string buf "\\)"
      | '|' -> Buffer.add_string buf "\\|"
      | '\\' when !i + 1 < n ->
          (match pattern.[!i + 1] with
          | 'd' -> Buffer.add_string buf "[0-9]"
          | 'D' -> Buffer.add_string buf "[^0-9]"
          | 's' -> Buffer.add_string buf "[ \t\n\r]"
          | 'S' -> Buffer.add_string buf "[^ \t\n\r]"
          | 'w' -> Buffer.add_string buf "[A-Za-z0-9_]"
          | c ->
              Buffer.add_char buf '\\';
              Buffer.add_char buf c);
          incr i
      | c -> Buffer.add_char buf c);
      incr i
    done;
    Str.regexp (Buffer.contents buf)
  in
  let re_search re s =
    try
      ignore (Str.search_forward re s 0);
      true
    with Not_found -> false
  in
  register "matches" 2 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let re = compile_re (one_string (List.nth args 1)) in
      [ Xdm.bool (re_search re s) ]);
  register "replace" 3 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let re = compile_re (one_string (List.nth args 1)) in
      let replacement =
        (* XPath uses $1..$9 for groups; Str uses \1..\9 *)
        Str.global_replace (Str.regexp "\\$\\([0-9]\\)") "\\\\\\1"
          (one_string (List.nth args 2))
      in
      [ Xdm.str (Str.global_replace re replacement s) ]);
  register "tokenize" 2 (fun _ args ->
      let s = one_string (List.nth args 0) in
      let re = compile_re (one_string (List.nth args 1)) in
      if s = "" then []
      else List.map (fun t -> Xdm.str t) (Str.split_delim re s));

  (* dates and times: component extraction over ISO-8601 lexical forms *)
  let component what f =
    register what 1 (fun _ args ->
        match List.nth args 0 with
        | [] -> []
        | seq ->
            let s = Xs.to_string (Xdm.one_atom ~what seq) in
            [ Xdm.int (f s) ])
  in
  let int_at s i len =
    try int_of_string (String.sub s i len) with _ -> dyn "bad date %S" s
  in
  let time_offset s =
    (* position of the HH:MM:SS block: after 'T' for dateTime, 0 for time *)
    match String.index_opt s 'T' with Some i -> i + 1 | None -> 0
  in
  component "year-from-date" (fun s -> int_at s 0 4);
  component "month-from-date" (fun s -> int_at s 5 2);
  component "day-from-date" (fun s -> int_at s 8 2);
  component "year-from-dateTime" (fun s -> int_at s 0 4);
  component "month-from-dateTime" (fun s -> int_at s 5 2);
  component "day-from-dateTime" (fun s -> int_at s 8 2);
  component "hours-from-dateTime" (fun s -> int_at s (time_offset s) 2);
  component "minutes-from-dateTime" (fun s -> int_at s (time_offset s + 3) 2);
  component "seconds-from-dateTime" (fun s -> int_at s (time_offset s + 6) 2);
  component "hours-from-time" (fun s -> int_at s 0 2);
  component "minutes-from-time" (fun s -> int_at s 3 2);
  component "seconds-from-time" (fun s -> int_at s 6 2);

  (* diagnostics *)
  register "error" 0 (fun _ _ -> dyn "FOER0000: fn:error()");
  register "error" 1 (fun _ args -> dyn "%s" (one_string (List.nth args 0)));
  register "error" 2 (fun _ args ->
      dyn "%s: %s" (one_string (List.nth args 0)) (one_string (List.nth args 1)));
  register "trace" 2 (fun _ args ->
      let seq = List.nth args 0 in
      Printf.eprintf "trace: %s %s\n%!" (one_string (List.nth args 1))
        (Xdm.to_display seq);
      seq);

  (* XQUF fn:put — emits a Put primitive (applied at commit time) *)
  register "put" 2 (fun ctx args ->
      let n = one_node (List.nth args 0) in
      let uri = one_string (List.nth args 1) in
      ctx.Context.pul := Update.Put (Store.to_tree n, uri) :: !(ctx.Context.pul);
      []);

  (* §5 helper functions: split an xrpc:// URL into host part and path *)
  register ~uri:Qname.ns_xrpc "host" 1 (fun _ args ->
      let url = one_string (List.nth args 0) in
      if String.length url >= 7 && String.sub url 0 7 = "xrpc://" then
        let rest = String.sub url 7 (String.length url - 7) in
        match String.index_opt rest '/' with
        | Some i -> [ Xdm.str ("xrpc://" ^ String.sub rest 0 i) ]
        | None -> [ Xdm.str url ]
      else [ Xdm.str "localhost" ]);
  register ~uri:Qname.ns_xrpc "path" 1 (fun _ args ->
      let url = one_string (List.nth args 0) in
      if String.length url >= 7 && String.sub url 0 7 = "xrpc://" then
        let rest = String.sub url 7 (String.length url - 7) in
        match String.index_opt rest '/' with
        | Some i -> [ Xdm.str (String.sub rest (i + 1) (String.length rest - i - 1)) ]
        | None -> [ Xdm.str "" ]
      else [ Xdm.str url ])
