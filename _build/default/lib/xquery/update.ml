(** XQuery Update Facility: pending update lists and [applyUpdates].

    Updating expressions never mutate anything during evaluation; they emit
    {e update primitives} into a pending update list (PUL).  Only
    [applyUpdates] (invoked by the peer when a query — or, under isolation
    rule R'_Fu, a whole distributed transaction — finishes) turns a PUL into
    new document trees.  Because trees are immutable, "applying" a PUL means
    rebuilding the affected documents; unaffected documents share structure.

    Per the XQUF (and §2.3 of the paper), the order in which multiple
    updates hit the same node is non-deterministic, so PULs from different
    XRPC calls can simply be unioned. *)

open Xrpc_xml

type primitive =
  | Insert_into of Store.node * Tree.t list
  | Insert_first of Store.node * Tree.t list
  | Insert_before of Store.node * Tree.t list
  | Insert_after of Store.node * Tree.t list
  | Insert_attributes of Store.node * Tree.attr list
  | Delete_node of Store.node
  | Replace_node of Store.node * Tree.t list
  | Replace_attr of Store.node * Tree.attr list
  | Replace_value of Store.node * string
  | Rename of Store.node * Qname.t
  | Put of Tree.t * string  (** [fn:put]: store a document at a URI *)

type pul = primitive list

exception Update_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Update_error s)) fmt

let target_node = function
  | Insert_into (n, _) | Insert_first (n, _) | Insert_before (n, _)
  | Insert_after (n, _) | Insert_attributes (n, _) | Delete_node n
  | Replace_node (n, _) | Replace_attr (n, _) | Replace_value (n, _)
  | Rename (n, _) ->
      Some n
  | Put _ -> None

(* Per-node edit record accumulated before the rebuild. *)
type edits = {
  mutable ins_into : Tree.t list;
  mutable ins_first : Tree.t list;
  mutable ins_before : Tree.t list;
  mutable ins_after : Tree.t list;
  mutable ins_attrs : Tree.attr list;
  mutable deleted : bool;
  mutable replaced : Tree.t list option;
  mutable replaced_attr : Tree.attr list option;
  mutable new_value : string option;
  mutable new_name : Qname.t option;
}

let fresh_edits () =
  {
    ins_into = []; ins_first = []; ins_before = []; ins_after = [];
    ins_attrs = []; deleted = false; replaced = None; replaced_attr = None;
    new_value = None; new_name = None;
  }

(** [apply pul] computes the new document tree for every store touched by
    [pul].  Returns [(store, new_tree) list] for node-targeted edits and a
    list of [fn:put] documents as [(uri, tree) list]; the database layer
    commits both. *)
let apply (pul : pul) :
    (Store.t * Tree.t) list * (string * Tree.t) list =
  let puts =
    List.filter_map (function Put (t, uri) -> Some (uri, t) | _ -> None) pul
  in
  (* group primitives by store *)
  let by_store : (int, Store.t * (int, edits) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let edits_for (n : Store.node) =
    let store = n.Store.store in
    let _, tbl =
      match Hashtbl.find_opt by_store store.Store.doc_id with
      | Some entry -> entry
      | None ->
          let entry = (store, Hashtbl.create 8) in
          Hashtbl.add by_store store.Store.doc_id entry;
          entry
    in
    match Hashtbl.find_opt tbl n.Store.pre with
    | Some e -> e
    | None ->
        let e = fresh_edits () in
        Hashtbl.add tbl n.Store.pre e;
        e
  in
  List.iter
    (fun prim ->
      match prim with
      | Put _ -> ()
      | Insert_into (n, ts) ->
          let e = edits_for n in
          e.ins_into <- e.ins_into @ ts
      | Insert_first (n, ts) ->
          let e = edits_for n in
          e.ins_first <- e.ins_first @ ts
      | Insert_before (n, ts) ->
          let e = edits_for n in
          e.ins_before <- e.ins_before @ ts
      | Insert_after (n, ts) ->
          let e = edits_for n in
          e.ins_after <- e.ins_after @ ts
      | Insert_attributes (n, ats) ->
          let e = edits_for n in
          e.ins_attrs <- e.ins_attrs @ ats
      | Delete_node n -> (edits_for n).deleted <- true
      | Replace_node (n, ts) -> (edits_for n).replaced <- Some ts
      | Replace_attr (n, ats) -> (edits_for n).replaced_attr <- Some ats
      | Replace_value (n, v) -> (edits_for n).new_value <- Some v
      | Rename (n, q) -> (edits_for n).new_name <- Some q)
    pul;
  let rebuild_store (store : Store.t) tbl =
    let edits_of pre = Hashtbl.find_opt tbl pre in
    let rec rebuild (n : Store.node) : Tree.t list =
      let e = edits_of n.Store.pre in
      match e with
      | Some { deleted = true; _ } -> []
      | Some { replaced = Some ts; _ } -> ts
      | _ ->
          let e = Option.value ~default:(fresh_edits ()) e in
          let kids () =
            e.ins_first
            @ List.concat_map
                (fun c ->
                  let ce = edits_of c.Store.pre in
                  let before =
                    match ce with Some x -> x.ins_before | None -> []
                  in
                  let after =
                    match ce with Some x -> x.ins_after | None -> []
                  in
                  before @ rebuild c @ after)
                (Store.children n)
            @ e.ins_into
          in
          let node =
            match Store.kind n with
            | Store.Doc -> Tree.Document (kids ())
            | Store.Elem ->
                let name =
                  match (e.new_name, Store.name n) with
                  | Some q, _ -> q
                  | None, Some q -> q
                  | None, None -> assert false
                in
                let attrs =
                  List.concat_map
                    (fun a ->
                      match edits_of a.Store.pre with
                      | Some { deleted = true; _ } -> []
                      | Some { replaced_attr = Some ats; _ } -> ats
                      | ae ->
                          let base = Store.attr_tree a in
                          let base =
                            match ae with
                            | Some { new_value = Some v; _ } ->
                                { base with Tree.value = v }
                            | _ -> base
                          in
                          let base =
                            match ae with
                            | Some { new_name = Some q; _ } ->
                                { base with Tree.name = q }
                            | _ -> base
                          in
                          [ base ])
                    (Store.attributes n)
                  @ e.ins_attrs
                in
                (match e.new_value with
                | Some v -> Tree.Element { name; attrs; children = [ Tree.Text v ] }
                | None -> Tree.Element { name; attrs; children = kids () })
            | Store.Txt ->
                Tree.Text
                  (Option.value ~default:(Store.string_value n) e.new_value)
            | Store.Comm ->
                Tree.Comment
                  (Option.value ~default:(Store.string_value n) e.new_value)
            | Store.Pi ->
                let target =
                  match (e.new_name, Store.name n) with
                  | Some q, _ -> q.Qname.local
                  | None, Some q -> q.Qname.local
                  | None, None -> ""
                in
                Tree.Pi
                  {
                    target;
                    data =
                      Option.value ~default:(Store.string_value n) e.new_value;
                  }
            | Store.Attr ->
                (* handled by the owning element above *)
                assert false
          in
          [ node ]
    in
    match rebuild (Store.root store) with
    | [ t ] -> t
    | [] -> err "cannot delete the document root"
    | _ -> err "document root replaced by multiple nodes"
  in
  let docs =
    Hashtbl.fold
      (fun _ (store, tbl) acc ->
        (* ignore stores of constructed (non-database) fragments with no URI:
           still rebuild so the caller can decide *)
        (store, rebuild_store store tbl) :: acc)
      by_store []
  in
  (docs, puts)

(** Human-readable PUL dump (used by tests and [fn:trace]). *)
let primitive_to_string = function
  | Insert_into (_, ts) -> Printf.sprintf "insert-into(%d nodes)" (List.length ts)
  | Insert_first (_, ts) -> Printf.sprintf "insert-first(%d nodes)" (List.length ts)
  | Insert_before (_, ts) -> Printf.sprintf "insert-before(%d nodes)" (List.length ts)
  | Insert_after (_, ts) -> Printf.sprintf "insert-after(%d nodes)" (List.length ts)
  | Insert_attributes (_, ats) -> Printf.sprintf "insert-attributes(%d)" (List.length ats)
  | Delete_node _ -> "delete"
  | Replace_node _ -> "replace-node"
  | Replace_attr _ -> "replace-attribute"
  | Replace_value (_, v) -> Printf.sprintf "replace-value(%S)" v
  | Rename (_, q) -> Printf.sprintf "rename(%s)" (Qname.to_string q)
  | Put (_, uri) -> Printf.sprintf "put(%s)" uri
