lib/xquery/ast.ml: Format List Qname Set String Xrpc_xml Xs
