lib/xquery/parser.ml: Ast Buffer Lexer List Printf Qname String Xrpc_xml Xs
