lib/xquery/runner.ml: Ast Context Eval List Option Parser Printf Qname Update Xdm Xrpc_xml
