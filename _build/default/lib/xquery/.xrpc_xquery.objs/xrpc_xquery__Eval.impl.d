lib/xquery/eval.ml: Ast Builtins Context Hashtbl List Printf Qname Store String Tree Update Xdm Xrpc_soap Xrpc_xml Xs
