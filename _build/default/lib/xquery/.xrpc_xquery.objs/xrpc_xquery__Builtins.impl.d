lib/xquery/builtins.ml: Buffer Char Context Float Hashtbl List Printf Qname Store Str String Update Xdm Xrpc_xml Xs
