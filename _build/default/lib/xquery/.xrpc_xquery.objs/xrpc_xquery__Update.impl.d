lib/xquery/update.ml: Hashtbl List Option Printf Qname Store Tree Xrpc_xml
