lib/xquery/context.ml: Ast Hashtbl List Map Qname Store String Update Xdm Xrpc_soap Xrpc_xml
