lib/xquery/lexer.ml: Buffer Char List Printf String
