lib/xquery/check.ml: Ast Builtins Context List Printf Qname Xrpc_xml
