lib/soap/message.ml: List Marshal Option Printf Qname Serialize String Tree Xdm Xml_parse Xrpc_xml
