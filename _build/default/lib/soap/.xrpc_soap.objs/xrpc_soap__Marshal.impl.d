lib/soap/marshal.ml: Array Hashtbl List Printf Qname Store String Tree Xdm Xrpc_xml Xs
