(** Parameter marshaling for SOAP XRPC — the [s2n]/[n2s] functions of §2.2.

    [s2n] turns an XDM sequence into an [xrpc:sequence] element; [n2s]
    performs the inverse.  Crucially, [n2s] re-shreds every node-typed value
    into a {e fresh} store, which enforces the paper's call-by-value
    semantics: on the receiving side each node parameter is the root of its
    own XML fragment, so upward and sideways XPath axes yield empty results
    and ancestor/descendant relationships between separate parameters are
    destroyed (§2.2, "Call-by-Value"). *)

open Xrpc_xml

exception Marshal_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Marshal_error s)) fmt

let xrpc local = Qname.make ~prefix:"xrpc" ~uri:Qname.ns_xrpc local
let xsi local = Qname.make ~prefix:"xsi" ~uri:Qname.ns_xsi local

let wrap_item = function
    | Xdm.Atomic a ->
        Tree.elem (xrpc "atomic-value")
          ~attrs:
            [ Tree.attr (xsi "type") ("xs:" ^ Xs.type_name (Xs.type_of a)) ]
          [ Tree.Text (Xs.to_string a) ]
    | Xdm.Node n -> (
        match Store.kind n with
        | Store.Elem -> Tree.elem (xrpc "element") [ Store.to_tree n ]
        | Store.Doc ->
            Tree.elem (xrpc "document")
              (match Store.to_tree n with
              | Tree.Document cs -> cs
              | t -> [ t ])
        | Store.Txt -> Tree.elem (xrpc "text") [ Tree.Text (Store.string_value n) ]
        | Store.Comm ->
            Tree.elem (xrpc "comment") [ Tree.Text (Store.string_value n) ]
        | Store.Pi ->
            let target =
              match Store.name n with Some q -> Qname.to_string q | None -> ""
            in
            Tree.elem (xrpc "pi")
              ~attrs:[ Tree.attr (Qname.make "target") target ]
              [ Tree.Text (Store.string_value n) ]
        | Store.Attr ->
            let a = Store.attr_tree n in
            Tree.elem (xrpc "attribute") ~attrs:[ a ] [])

(** [s2n seq] — sequence-to-node: the SOAP representation of [seq]. *)
let s2n (seq : Xdm.sequence) : Tree.t =
  Tree.elem (xrpc "sequence") (List.map wrap_item seq)

(** Call-by-fragment marshaling — the protocol extension sketched in
    footnote 4 of the paper.  Within one call, a node parameter that is a
    descendant-or-self of an {e earlier, fully serialized} node parameter
    is sent as a reference [<xrpc:element xrpc:nodeid="Δpre"
    xrpc:param="p" xrpc:item="i"/>] instead of being re-serialized.  On
    the receiving side the reference resolves {e into the same fragment},
    so ancestor/descendant relationships between parameters — destroyed by
    plain call-by-value — are preserved, and the SOAP message shrinks. *)
let s2n_call ?(fragments = false) (params : Xdm.sequence list) : Tree.t list =
  if not fragments then List.map s2n params
  else begin
    (* nodes already serialized in full, with their (param, item) slot *)
    let serialized : (Store.node * int * int) list ref = ref [] in
    let covering (n : Store.node) =
      List.find_opt
        (fun ((anc : Store.node), _, _) ->
          anc.Store.store.Store.doc_id = n.Store.store.Store.doc_id
          && anc.Store.pre <= n.Store.pre
          && n.Store.pre
             <= anc.Store.pre + anc.Store.store.Store.size.(anc.Store.pre))
        !serialized
    in
    List.mapi
      (fun pi seq ->
        Tree.elem (xrpc "sequence")
          (List.mapi
             (fun ii item ->
               match item with
               | Xdm.Node n when Store.kind n = Store.Elem -> (
                   match covering n with
                   | Some (anc, api, aii) ->
                       Tree.elem (xrpc "element")
                         ~attrs:
                           [
                             Tree.attr (xrpc "nodeid")
                               (string_of_int (n.Store.pre - anc.Store.pre));
                             Tree.attr (xrpc "param") (string_of_int api);
                             Tree.attr (xrpc "item") (string_of_int aii);
                           ]
                         []
                   | None ->
                       serialized := (n, pi, ii) :: !serialized;
                       wrap_item item)
               | item -> wrap_item item)
             seq))
      params
  end

(** [n2s node_tree] — node-to-sequence: parse an [xrpc:sequence] element
    back into an XDM sequence, constructing each node value as a separate
    fragment (fresh store). *)
let n2s (t : Tree.t) : Xdm.sequence =
  let unwrap_child = function
    | Tree.Element { name; attrs; children } when name.Qname.uri = Qname.ns_xrpc
      -> (
        match name.Qname.local with
        | "atomic-value" ->
            let typ =
              match
                List.find_opt
                  (fun (a : Tree.attr) ->
                    a.name.Qname.local = "type"
                    && (a.name.Qname.uri = Qname.ns_xsi || a.name.Qname.uri = ""))
                  attrs
              with
              | None -> Xs.TUntypedAtomic
              | Some a -> (
                  let _, local = Qname.split a.value in
                  match Xs.type_of_name local with
                  | Some t -> t
                  | None -> Xs.TUntypedAtomic)
            in
            Xdm.Atomic (Xs.of_string typ (Tree.string_value (Tree.Document children)))
        | "element" -> (
            match
              List.find_opt
                (function Tree.Element _ -> true | _ -> false)
                children
            with
            | Some e ->
                let store = Store.shred e in
                Xdm.Node (Store.root store)
            | None -> err "xrpc:element without element child")
        | "document" ->
            let store = Store.shred (Tree.Document children) in
            Xdm.Node (Store.root store)
        | "text" ->
            let store = Store.shred (Tree.Text (Tree.string_value (Tree.Document children))) in
            Xdm.Node (Store.root store)
        | "comment" ->
            let store = Store.shred (Tree.Comment (Tree.string_value (Tree.Document children))) in
            Xdm.Node (Store.root store)
        | "pi" ->
            let target =
              match
                List.find_opt
                  (fun (a : Tree.attr) -> a.name.Qname.local = "target")
                  attrs
              with
              | Some a -> a.value
              | None -> ""
            in
            let store =
              Store.shred
                (Tree.Pi { target; data = Tree.string_value (Tree.Document children) })
            in
            Xdm.Node (Store.root store)
        | "attribute" -> (
            match attrs with
            | a :: _ ->
                (* An attribute node needs an owner element in the store;
                   shred a carrier element and return its attribute. *)
                let store =
                  Store.shred (Tree.elem (xrpc "attr-carrier") ~attrs:[ a ] [])
                in
                let owner = Store.root store in
                (match Store.attributes owner with
                | at :: _ -> Xdm.Node at
                | [] -> err "attribute carrier lost its attribute")
            | [] -> err "xrpc:attribute without attribute")
        | other -> err "unexpected xrpc:%s in sequence" other)
    | Tree.Text s when String.trim s = "" ->
        err "whitespace"
    | _ -> err "unexpected content in xrpc:sequence"
  in
  match t with
  | Tree.Element { name; children; _ }
    when name.Qname.uri = Qname.ns_xrpc && name.Qname.local = "sequence" ->
      List.filter_map
        (fun c ->
          match c with
          | Tree.Text s when String.trim s = "" -> None
          | c -> Some (unwrap_child c))
        children
  | _ -> err "expected xrpc:sequence element"

(** [n2s_call seqs] — unmarshal all parameter sequences of one call,
    resolving any [xrpc:nodeid] references (footnote-4 extension) into the
    fragments of their fully-serialized ancestors.  Identical to mapping
    {!n2s} when no references are present. *)
let n2s_call (seq_trees : Tree.t list) : Xdm.sequence list =
  let get_attr attrs local =
    List.find_map
      (fun (a : Tree.attr) ->
        if a.name.Qname.local = local then Some a.value else None)
      attrs
  in
  let children_of = function
    | Tree.Element { name; children; _ }
      when name.Qname.uri = Qname.ns_xrpc && name.Qname.local = "sequence" ->
        List.filter
          (function Tree.Text s -> String.trim s <> "" | _ -> true)
          children
    | _ -> err "expected xrpc:sequence element"
  in
  let specs =
    List.map
      (fun t ->
        List.map
          (fun c ->
            match c with
            | Tree.Element { name; attrs; _ }
              when name.Qname.uri = Qname.ns_xrpc
                   && name.Qname.local = "element"
                   && get_attr attrs "nodeid" <> None ->
                let geti what =
                  match get_attr attrs what with
                  | Some v -> ( try int_of_string v with _ -> err "bad %s" what)
                  | None -> err "nodeid reference missing %s" what
                in
                `Ref (geti "param", geti "item", geti "nodeid")
            | c -> `Plain c)
          (children_of t))
      seq_trees
  in
  (* pass 1: plain items *)
  let table : (int * int, Xdm.item) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun pi items ->
      List.iteri
        (fun ii spec ->
          match spec with
          | `Plain c ->
              let seq = n2s (Tree.elem (xrpc "sequence") [ c ]) in
              (match seq with
              | [ item ] -> Hashtbl.replace table (pi, ii) item
              | _ -> err "single item expected")
          | `Ref _ -> ())
        items)
    specs;
  (* pass 2: resolve references into their ancestors' fragments *)
  List.mapi
    (fun pi items ->
      List.mapi
        (fun ii spec ->
          match spec with
          | `Plain _ -> Hashtbl.find table (pi, ii)
          | `Ref (rp, ri, delta) -> (
              match Hashtbl.find_opt table (rp, ri) with
              | Some (Xdm.Node base) ->
                  let pre = base.Store.pre + delta in
                  if pre >= Store.node_count base.Store.store then
                    err "nodeid offset out of range"
                  else Xdm.Node { base with Store.pre }
              | Some (Xdm.Atomic _) -> err "nodeid reference to atomic parameter"
              | None -> err "nodeid reference to unknown parameter (%d,%d)" rp ri))
        items)
    specs
