(** Expanded qualified names for XML nodes and XQuery functions.

    A [Qname.t] carries the original prefix (for serialization fidelity), the
    namespace URI it resolved to, and the local part.  Equality and ordering
    ignore the prefix, per the XQuery Data Model. *)

type t = {
  prefix : string;  (** original lexical prefix, ["" ] if none *)
  uri : string;  (** namespace URI, [""] if in no namespace *)
  local : string;  (** local part *)
}

let make ?(prefix = "") ?(uri = "") local = { prefix; uri; local }

(** Well-known namespace URIs used throughout the XRPC stack. *)
let ns_xml = "http://www.w3.org/XML/1998/namespace"

let ns_xs = "http://www.w3.org/2001/XMLSchema"
let ns_xsi = "http://www.w3.org/2001/XMLSchema-instance"
let ns_env = "http://www.w3.org/2003/05/soap-envelope"
let ns_xrpc = "http://monetdb.cwi.nl/XQuery"
let ns_fn = "http://www.w3.org/2005/xpath-functions"

let equal a b = String.equal a.uri b.uri && String.equal a.local b.local

let compare a b =
  match String.compare a.uri b.uri with
  | 0 -> String.compare a.local b.local
  | c -> c

let hash t = Hashtbl.hash (t.uri, t.local)

(** [to_string q] prints the lexical form [prefix:local] (or just [local]). *)
let to_string t = if t.prefix = "" then t.local else t.prefix ^ ":" ^ t.local

(** [expanded q] prints Clark notation [{uri}local], useful in errors. *)
let expanded t = if t.uri = "" then t.local else "{" ^ t.uri ^ "}" ^ t.local

(** [split s] splits a lexical QName ["p:l"] into [(prefix, local)]. *)
let split s =
  match String.index_opt s ':' with
  | None -> ("", s)
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
