lib/xml/tree.ml: List Qname String
