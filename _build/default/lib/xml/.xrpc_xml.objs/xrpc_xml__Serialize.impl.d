lib/xml/serialize.ml: Buffer List Qname String Tree
