lib/xml/xml_parse.ml: Buffer Char List Printf Qname String Tree
