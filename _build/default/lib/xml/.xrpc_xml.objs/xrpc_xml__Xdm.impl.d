lib/xml/xdm.ml: List Printf Qname Serialize Store String Tree Xs
