lib/xml/xs.ml: Bool Float Format Printf Qname String
