lib/xml/store.ml: Array Buffer Int List Qname Tree
