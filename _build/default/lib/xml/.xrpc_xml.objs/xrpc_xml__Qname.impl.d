lib/xml/qname.ml: Hashtbl String
