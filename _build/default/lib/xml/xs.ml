(** XML Schema atomic values — the atomic half of the XQuery Data Model.

    XRPC marshals atomic values with an [xsi:type] annotation (§2.1 of the
    paper), so every value carries its dynamic type and knows its canonical
    lexical form.  The subset implemented here covers every type the paper's
    queries and the XRPC protocol schema exercise, plus the usual numeric
    tower with XPath 2.0 promotion rules. *)

type typ =
  | TString
  | TBoolean
  | TInteger
  | TDecimal
  | TDouble
  | TFloat
  | TUntypedAtomic
  | TAnyURI
  | TQName
  | TDate
  | TDateTime
  | TTime
  | TDuration

type t =
  | String of string
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | Double of float
  | Float of float
  | Untyped of string
  | AnyURI of string
  | QName of Qname.t
  | Date of string
  | DateTime of string
  | Time of string
  | Duration of string

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let type_of = function
  | String _ -> TString
  | Boolean _ -> TBoolean
  | Integer _ -> TInteger
  | Decimal _ -> TDecimal
  | Double _ -> TDouble
  | Float _ -> TFloat
  | Untyped _ -> TUntypedAtomic
  | AnyURI _ -> TAnyURI
  | QName _ -> TQName
  | Date _ -> TDate
  | DateTime _ -> TDateTime
  | Time _ -> TTime
  | Duration _ -> TDuration

(** Local name of the type within the [xs:] namespace, as used in
    [xsi:type] attributes of SOAP XRPC messages. *)
let type_name = function
  | TString -> "string"
  | TBoolean -> "boolean"
  | TInteger -> "integer"
  | TDecimal -> "decimal"
  | TDouble -> "double"
  | TFloat -> "float"
  | TUntypedAtomic -> "untypedAtomic"
  | TAnyURI -> "anyURI"
  | TQName -> "QName"
  | TDate -> "date"
  | TDateTime -> "dateTime"
  | TTime -> "time"
  | TDuration -> "duration"

let type_of_name = function
  | "string" -> Some TString
  | "boolean" -> Some TBoolean
  | "integer" | "int" | "long" | "short" | "byte" | "nonNegativeInteger"
  | "positiveInteger" | "negativeInteger" | "nonPositiveInteger"
  | "unsignedInt" | "unsignedLong" | "unsignedShort" | "unsignedByte" ->
      Some TInteger
  | "decimal" -> Some TDecimal
  | "double" -> Some TDouble
  | "float" -> Some TFloat
  | "untypedAtomic" | "anySimpleType" | "anyAtomicType" -> Some TUntypedAtomic
  | "anyURI" -> Some TAnyURI
  | "QName" -> Some TQName
  | "date" -> Some TDate
  | "dateTime" -> Some TDateTime
  | "time" -> Some TTime
  | "duration" | "dayTimeDuration" | "yearMonthDuration" -> Some TDuration
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lexical forms                                                       *)
(* ------------------------------------------------------------------ *)

(** Canonical float printing per XML Schema: integral doubles print without
    exponent, NaN/INF use schema spellings. *)
let float_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    s

let to_string = function
  | String s | Untyped s | AnyURI s -> s
  | Boolean b -> if b then "true" else "false"
  | Integer i -> string_of_int i
  | Decimal f | Double f | Float f -> float_to_string f
  | QName q -> Qname.to_string q
  | Date s | DateTime s | Time s | Duration s -> s

let parse_bool s =
  match String.trim s with
  | "true" | "1" -> true
  | "false" | "0" -> false
  | s -> type_error "cannot cast %S to xs:boolean" s

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> type_error "cannot cast %S to xs:integer" s

let parse_float s =
  match String.trim s with
  | "INF" | "+INF" -> Float.infinity
  | "-INF" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> type_error "cannot cast %S to xs:double" s)

(** [of_string typ lexical] parses a lexical form into a typed value; raises
    {!Type_error} on an invalid lexical form. *)
let of_string typ s =
  match typ with
  | TString -> String s
  | TBoolean -> Boolean (parse_bool s)
  | TInteger -> Integer (parse_int s)
  | TDecimal -> Decimal (parse_float s)
  | TDouble -> Double (parse_float s)
  | TFloat -> Float (parse_float s)
  | TUntypedAtomic -> Untyped s
  | TAnyURI -> AnyURI (String.trim s)
  | TQName ->
      let prefix, local = Qname.split (String.trim s) in
      QName (Qname.make ~prefix local)
  | TDate -> Date (String.trim s)
  | TDateTime -> DateTime (String.trim s)
  | TTime -> Time (String.trim s)
  | TDuration -> Duration (String.trim s)

(* ------------------------------------------------------------------ *)
(* Numeric tower                                                       *)
(* ------------------------------------------------------------------ *)

let is_numeric = function
  | Integer _ | Decimal _ | Double _ | Float _ -> true
  | _ -> false

(** Numeric value as a float, also accepting untyped atomics (which XPath
    promotes to xs:double). *)
let to_float = function
  | Integer i -> float_of_int i
  | Decimal f | Double f | Float f -> f
  | Untyped s -> parse_float s
  | v -> type_error "not a number: %s" (to_string v)

(** Result type of a binary arithmetic op under XPath promotion. *)
let promote a b =
  match (a, b) with
  | (Double _ | Untyped _), _ | _, (Double _ | Untyped _) -> TDouble
  | Float _, _ | _, Float _ -> TFloat
  | Decimal _, _ | _, Decimal _ -> TDecimal
  | _ -> TInteger

let of_promoted typ f =
  match typ with
  | TInteger -> Integer (int_of_float f)
  | TDecimal -> Decimal f
  | TFloat -> Float f
  | _ -> Double f

let arith op a b =
  let t = promote a b in
  let x = to_float a and y = to_float b in
  match op with
  | `Add -> of_promoted t (x +. y)
  | `Sub -> of_promoted t (x -. y)
  | `Mul -> of_promoted t (x *. y)
  | `Div -> (
      match t with
      | TInteger ->
          if y = 0. then type_error "division by zero" else Decimal (x /. y)
      | _ -> of_promoted t (x /. y))
  | `Idiv ->
      if y = 0. then type_error "integer division by zero"
      else Integer (int_of_float (Float.trunc (x /. y)))
  | `Mod ->
      if y = 0. && t = TInteger then type_error "modulo by zero"
      else of_promoted t (Float.rem x y)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

(** Seconds since epoch-0 for an ISO-8601 date/dateTime/time lexical form
    (proleptic, ignoring leap seconds); respects Z / ±HH:MM offsets. *)
let temporal_key s =
  let s = String.trim s in
  let num start len =
    try float_of_string (String.sub s start len) with _ -> 0.
  in
  let days_from_civil y m d =
    (* Howard Hinnant's algorithm, fine for comparisons *)
    let y = if m <= 2 then y - 1 else y in
    let era = (if y >= 0 then y else y - 399) / 400 in
    let yoe = y - (era * 400) in
    let mp = (m + 9) mod 12 in
    let doy = ((153 * mp) + 2) / 5 + d - 1 in
    let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
    float_of_int ((era * 146097) + doe - 719468)
  in
  let date_part, time_part =
    if String.length s >= 10 && s.[4] = '-' then
      ( days_from_civil
          (int_of_float (num 0 4))
          (int_of_float (num 5 2))
          (int_of_float (num 8 2))
        *. 86400.,
        if String.length s > 10 && s.[10] = 'T' then
          String.sub s 11 (String.length s - 11)
        else "" )
    else (0., s)
  in
  let tod, tz =
    if time_part = "" then (0., 0.)
    else
      (* split off timezone suffix *)
      let tz_pos =
        let rec find i =
          if i >= String.length time_part then None
          else
            match time_part.[i] with
            | 'Z' | '+' -> Some i
            | '-' when i > 0 -> Some i
            | _ -> find (i + 1)
        in
        find 0
      in
      let core, tzs =
        match tz_pos with
        | Some i ->
            ( String.sub time_part 0 i,
              String.sub time_part i (String.length time_part - i) )
        | None -> (time_part, "")
      in
      let part i len =
        if String.length core >= i + len then
          try float_of_string (String.sub core i len) with _ -> 0.
        else 0.
      in
      let seconds =
        if String.length core > 6 then
          try float_of_string (String.sub core 6 (String.length core - 6))
          with _ -> 0.
        else 0.
      in
      let tod = (part 0 2 *. 3600.) +. (part 3 2 *. 60.) +. seconds in
      let tz =
        match tzs with
        | "" | "Z" -> 0.
        | t when String.length t >= 6 ->
            let sign = if t.[0] = '-' then -1. else 1. in
            let h = try float_of_string (String.sub t 1 2) with _ -> 0. in
            let m = try float_of_string (String.sub t 4 2) with _ -> 0. in
            sign *. ((h *. 3600.) +. (m *. 60.))
        | _ -> 0.
      in
      (tod, tz)
  in
  date_part +. tod -. tz

let is_temporal = function
  | Date _ | DateTime _ | Time _ -> true
  | _ -> false

(** Value comparison per XPath 2.0: numerics compare numerically (with
    untyped promoted to double against numerics), dates/times on the
    timeline (timezone-aware), strings by codepoint.
    Returns a negative/zero/positive integer. *)
let compare_values a b =
  match (a, b) with
  | Boolean x, Boolean y -> Bool.compare x y
  | _ when is_numeric a || is_numeric b ->
      Float.compare (to_float a) (to_float b)
  | _ when is_temporal a && is_temporal b ->
      Float.compare (temporal_key (to_string a)) (temporal_key (to_string b))
  | QName x, QName y ->
      if Qname.equal x y then 0 else Qname.compare x y
  | _ -> String.compare (to_string a) (to_string b)

let equal_values a b = compare_values a b = 0

(** Untyped-vs-typed coercion for general comparisons: an untyped operand is
    cast to the other operand's type (double if both untyped are compared to
    numerics; string otherwise). *)
let coerce_general a b =
  match (a, b) with
  | Untyped s, t when is_numeric t -> (Double (parse_float s), t)
  | t, Untyped s when is_numeric t -> (t, Double (parse_float s))
  | Untyped s, Boolean _ -> (Boolean (parse_bool s), b)
  | Boolean _, Untyped s -> (a, Boolean (parse_bool s))
  | _ -> (a, b)

(** Effective boolean value of a single atomic. *)
let ebv = function
  | Boolean b -> b
  | String s | Untyped s | AnyURI s -> s <> ""
  | Integer i -> i <> 0
  | Decimal f | Double f | Float f -> f <> 0. && not (Float.is_nan f)
  | v -> type_error "no effective boolean value for %s" (to_string v)

(* ------------------------------------------------------------------ *)
(* Casting                                                             *)
(* ------------------------------------------------------------------ *)

(** [cast v typ] implements "cast as" for the supported subset. *)
let cast v typ =
  match (v, typ) with
  | v, t when type_of v = t -> v
  | Integer i, (TDecimal | TDouble | TFloat) ->
      of_promoted typ (float_of_int i)
  | (Decimal f | Double f | Float f), TInteger -> Integer (int_of_float f)
  | (Decimal f | Double f), TDouble -> Double f
  | (Double f | Float f), TDecimal -> Decimal f
  | (Decimal f | Double f), TFloat -> Float f
  | Boolean b, (TDouble | TDecimal | TFloat) ->
      of_promoted typ (if b then 1. else 0.)
  | Boolean b, TInteger -> Integer (if b then 1 else 0)
  | v, t -> of_string t (to_string v)

let pp fmt v =
  Format.fprintf fmt "xs:%s(%s)" (type_name (type_of v)) (to_string v)
