(** Immutable XML node trees.

    Trees are the value representation of documents and constructed nodes.
    They carry no identity; identity is assigned when a tree is shredded into
    a {!Store} (the MonetDB-style encoding).  Keeping trees immutable makes
    the repeatable-read snapshots of §2.2 free: a snapshot is just a
    reference to the old tree. *)

type attr = { name : Qname.t; value : string }

type t =
  | Document of t list
  | Element of { name : Qname.t; attrs : attr list; children : t list }
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

let document children = Document children
let elem ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s
let attr name value = { name; value }

(** [string_value t] concatenates all descendant text, per XDM. *)
let rec string_value = function
  | Text s -> s
  | Comment _ | Pi _ -> ""
  | Document cs | Element { children = cs; _ } ->
      String.concat "" (List.map string_value cs)

(** Number of nodes in the tree, counting attributes (used to size stores). *)
let rec node_count = function
  | Text _ | Comment _ | Pi _ -> 1
  | Document cs -> 1 + List.fold_left (fun a c -> a + node_count c) 0 cs
  | Element { attrs; children; _ } ->
      1 + List.length attrs
      + List.fold_left (fun a c -> a + node_count c) 0 children

let rec equal a b =
  match (a, b) with
  | Document xs, Document ys -> equal_lists xs ys
  | Text x, Text y | Comment x, Comment y -> String.equal x y
  | Pi x, Pi y -> x.target = y.target && x.data = y.data
  | Element x, Element y ->
      Qname.equal x.name y.name
      && List.length x.attrs = List.length y.attrs
      && List.for_all2
           (fun (a : attr) (b : attr) ->
             Qname.equal a.name b.name && String.equal a.value b.value)
           x.attrs y.attrs
      && equal_lists x.children y.children
  | _ -> false

and equal_lists xs ys =
  List.length xs = List.length ys && List.for_all2 equal xs ys
