(** The XQuery Data Model: items and sequences.

    An item is either an atomic value ({!Xs.t}) or a node reference into a
    shredded {!Store}.  Sequences are flat item lists (XDM sequences never
    nest).  This module also hosts the XDM operations shared by the
    interpreter, the algebra engine, and the SOAP marshaler: atomization,
    effective boolean value, deep-equal, and document-order dedup. *)

type item = Atomic of Xs.t | Node of Store.node
type sequence = item list

exception Dynamic_error of string

let dyn_error fmt = Printf.ksprintf (fun s -> raise (Dynamic_error s)) fmt

let singleton i = [ i ]
let of_atom a = [ Atomic a ]
let of_node n = [ Node n ]
let str s = Atomic (Xs.String s)
let int i = Atomic (Xs.Integer i)
let bool b = Atomic (Xs.Boolean b)

(** [string_value item] — the XDM string value. *)
let string_value = function
  | Atomic a -> Xs.to_string a
  | Node n -> Store.string_value n

(** [atomize seq] — typed-value extraction.  Element/attribute/text content
    atomizes to [xs:untypedAtomic] (we run schema-less, like
    MonetDB/XQuery's default). *)
let atomize_item = function
  | Atomic a -> a
  | Node n -> Xs.Untyped (Store.string_value n)

let atomize seq = List.map atomize_item seq

(** Effective boolean value of a sequence per XPath 2.0 §2.4.3. *)
let ebv = function
  | [] -> false
  | [ Atomic a ] -> Xs.ebv a
  | Node _ :: _ -> true
  | _ -> dyn_error "FORG0006: invalid argument to effective boolean value"

(** Exactly-one atomic out of a sequence, with a caller-supplied role for
    the error message. *)
let one_atom ~what = function
  | [ i ] -> atomize_item i
  | [] -> dyn_error "empty sequence where one %s expected" what
  | _ -> dyn_error "more than one item where one %s expected" what

(** Exactly-one item out of a sequence. *)
let one_item ~what = function
  | [ i ] -> i
  | [] -> dyn_error "empty sequence where one %s expected" what
  | _ -> dyn_error "more than one item where one %s expected" what

let node_only = function
  | Node n -> n
  | Atomic a -> dyn_error "expected a node, got atomic %s" (Xs.to_string a)

(** Sort by document order and remove duplicate nodes — the implicit
    semantics of every XPath step result. *)
let doc_order_dedup nodes =
  let sorted = List.sort Store.compare_nodes nodes in
  let rec dedup = function
    | a :: (b :: _ as rest) when Store.equal_nodes a b -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(** Structural deep-equal (ignores node identity), used by tests and
    [fn:deep-equal]. *)
let rec deep_equal (a : sequence) (b : sequence) =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> item_equal x y && deep_equal xs ys
  | _ -> false

and item_equal x y =
  match (x, y) with
  | Atomic p, Atomic q -> ( try Xs.equal_values p q with Xs.Type_error _ -> false)
  | Node p, Node q -> (
      match (Store.kind p, Store.kind q) with
      | Store.Attr, Store.Attr ->
          let pa = Store.attr_tree p and qa = Store.attr_tree q in
          Qname.equal pa.Tree.name qa.Tree.name && pa.value = qa.value
      | Store.Attr, _ | _, Store.Attr -> false
      | _ -> Tree.equal (Store.to_tree p) (Store.to_tree q))
  | _ -> false

(** Render a sequence the way query results are shown to users: nodes are
    serialized, atomics printed in lexical form, items space-separated. *)
let to_display seq =
  String.concat " "
    (List.map
       (function
         | Atomic a -> Xs.to_string a
         | Node n -> (
             match Store.kind n with
             | Store.Attr ->
                 let a = Store.attr_tree n in
                 Printf.sprintf "%s=\"%s\"" (Qname.to_string a.Tree.name)
                   a.value
             | _ -> Serialize.to_string (Store.to_tree n)))
       seq)
