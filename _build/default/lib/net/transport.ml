(** Transport abstraction: how serialized SOAP XRPC messages move between
    peers.

    A transport is a pair of send functions over raw message bodies
    (strings).  [send_parallel] exists because MonetDB/XQuery dispatches
    Bulk RPC requests to distinct peers in parallel (§3.2); a simulated
    transport charges the {e maximum} of the individual costs instead of
    their sum, a real transport may use threads. *)

type t = {
  send : dest:string -> string -> string;
      (** POST a request body to a peer, return the response body *)
  send_parallel : (string * string) list -> string list;
      (** same, to several (dest, body) pairs concurrently *)
}

let sequential send =
  { send; send_parallel = List.map (fun (dest, body) -> send ~dest body) }
