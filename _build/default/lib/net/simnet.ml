(** Deterministic simulated network with a virtual clock.

    The paper's experiments ran on two Athlon64 boxes on 1 Gb/s Ethernet;
    we do not have that testbed, so the benchmarks charge network costs to
    a virtual clock instead: each message costs one-way [latency_ms] plus
    [bytes / bandwidth]; a request/response interaction costs both
    directions.  Handler CPU can optionally be charged at real measured
    time ([charge_cpu]), which is what the benches use — CPU cost is real,
    network cost is modeled, so relative shapes (bulk vs one-at-a-time,
    strategy comparisons) are preserved.  Parallel dispatch charges the
    maximum completion time across peers, matching §3.2. *)

type config = {
  latency_ms : float;  (** one-way network latency per message *)
  bandwidth_bytes_per_ms : float;  (** payload cost; [infinity] disables *)
  charge_cpu : bool;  (** add real handler CPU time to the clock *)
}

let default_config =
  (* ~1 Gb/s Ethernet with sub-millisecond LAN latency, like the paper's
     testbed: 0.6 ms one-way, 125 bytes/us *)
  { latency_ms = 0.6; bandwidth_bytes_per_ms = 125_000.; charge_cpu = true }

type stats = {
  mutable messages : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable network_ms : float;
      (** pure network cost (latency + transfer) excluding handler CPU —
          lets callers combine modeled network time with real measured CPU
          time without double counting *)
}

type t = {
  config : config;
  mutable clock_ms : float;  (** virtual time *)
  handlers : (string, string -> string) Hashtbl.t;  (** peer key -> handler *)
  stats : stats;
}

exception Unknown_peer of string

let create ?(config = default_config) () =
  {
    config;
    clock_ms = 0.;
    handlers = Hashtbl.create 8;
    stats = { messages = 0; bytes_sent = 0; bytes_received = 0; network_ms = 0. };
  }

(** [register net uri handler] attaches a peer (handler over raw bodies)
    under the host[:port] of [uri]. *)
let register net uri handler =
  Hashtbl.replace net.handlers (Xrpc_uri.peer_key_of_string uri) handler

let transfer_cost net bytes =
  net.config.latency_ms +. float_of_int bytes /. net.config.bandwidth_bytes_per_ms

(* one request/response interaction; returns (response, elapsed_virtual_ms) *)
let interact net ~dest body =
  let key = Xrpc_uri.peer_key_of_string dest in
  let handler =
    match Hashtbl.find_opt net.handlers key with
    | Some h -> h
    | None -> raise (Unknown_peer dest)
  in
  let t0 = if net.config.charge_cpu then Unix.gettimeofday () else 0. in
  let response = handler body in
  let cpu_ms =
    if net.config.charge_cpu then (Unix.gettimeofday () -. t0) *. 1000. else 0.
  in
  net.stats.messages <- net.stats.messages + 2;
  net.stats.bytes_sent <- net.stats.bytes_sent + String.length body;
  net.stats.bytes_received <- net.stats.bytes_received + String.length response;
  let wire_ms =
    transfer_cost net (String.length body)
    +. transfer_cost net (String.length response)
  in
  net.stats.network_ms <- net.stats.network_ms +. wire_ms;
  (response, wire_ms +. cpu_ms)

(** Synchronous round trip: advances the virtual clock by latency +
    transfer + (optionally) handler CPU, both ways. *)
let send net ~dest body =
  let response, elapsed = interact net ~dest body in
  net.clock_ms <- net.clock_ms +. elapsed;
  response

(** Parallel dispatch to several peers: the clock advances by the maximum
    of the individual costs (all requests are in flight simultaneously). *)
let send_parallel net pairs =
  let results =
    List.map (fun (dest, body) -> interact net ~dest body) pairs
  in
  let slowest = List.fold_left (fun m (_, e) -> Float.max m e) 0. results in
  net.clock_ms <- net.clock_ms +. slowest;
  List.map fst results

let transport net =
  {
    Transport.send = (fun ~dest body -> send net ~dest body);
    send_parallel = (fun pairs -> send_parallel net pairs);
  }

let reset_clock net = net.clock_ms <- 0.

let reset_stats net =
  net.stats.messages <- 0;
  net.stats.bytes_sent <- 0;
  net.stats.bytes_received <- 0;
  net.stats.network_ms <- 0.
