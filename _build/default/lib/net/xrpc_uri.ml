(** The [xrpc://] URI scheme of §2: [xrpc://<host>[:port][/[path]]]. *)

type t = {
  scheme : string;
  host : string;
  port : int option;
  path : string;  (** without the leading slash *)
}

exception Bad_uri of string

(** [parse s] accepts [xrpc://host[:port][/path]] and, for convenience,
    bare host names (the paper's examples use both ["xrpc://y.example.org"]
    and ["B"]). *)
let parse s =
  let scheme, rest =
    match String.index_opt s ':' with
    | Some i
      when i + 2 < String.length s
           && String.sub s (i + 1) 2 = "//" ->
        (String.sub s 0 i, String.sub s (i + 3) (String.length s - i - 3))
    | _ -> ("xrpc", s)
  in
  let hostport, path =
    match String.index_opt rest '/' with
    | Some i ->
        ( String.sub rest 0 i,
          String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> (rest, "")
  in
  let host, port =
    match String.index_opt hostport ':' with
    | Some i -> (
        let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
        match int_of_string_opt p with
        | Some port -> (String.sub hostport 0 i, Some port)
        | None -> raise (Bad_uri s))
    | None -> (hostport, None)
  in
  if host = "" then raise (Bad_uri s);
  { scheme; host; port; path }

let to_string t =
  Printf.sprintf "%s://%s%s%s" t.scheme t.host
    (match t.port with Some p -> ":" ^ string_of_int p | None -> "")
    (if t.path = "" then "" else "/" ^ t.path)

(** Canonical peer identity used to route messages: host[:port]. *)
let peer_key t =
  match t.port with
  | Some p -> Printf.sprintf "%s:%d" t.host p
  | None -> t.host

let peer_key_of_string s = peer_key (parse s)
