lib/net/xrpc_uri.ml: Printf String
