lib/net/simnet.ml: Float Hashtbl List String Transport Unix Xrpc_uri
