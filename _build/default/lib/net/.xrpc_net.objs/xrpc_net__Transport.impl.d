lib/net/transport.ml: List
