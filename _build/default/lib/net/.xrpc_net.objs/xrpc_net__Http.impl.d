lib/net/http.ml: Array Buffer Fun List Option Printexc Printf String Thread Transport Unix Xrpc_uri
