lib/algebra/bulk_rpc.ml: List Ops Printf Table Xdm Xrpc_soap Xrpc_xml
