lib/algebra/looplift.ml: Bulk_rpc Hashtbl Int List Ops Printf Qname Store String Table Tree Xdm Xrpc_soap Xrpc_xml Xrpc_xquery Xs
