lib/algebra/ops.ml: Hashtbl Int List Option Table Xdm Xrpc_xml Xs
