lib/algebra/table.ml: Int List Printf Serialize Store String Xdm Xrpc_xml Xs
