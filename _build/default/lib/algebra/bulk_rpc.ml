(** The relational translation of a loop-lifted XRPC call — Figure 2 of the
    paper, with the intermediate tables of Figure 1 exposed for inspection.

    {v
    execute at {dst} { f(param1, ..., paramn) }  ⇒  result
      peers   = δ(π_item(dst))
      map_p   = π_{iter,iterp}(ρ_{iterp:<iter>}(σ_{item=p}(dst)))
      req_i_p = π_{iterp,pos,item}(ρ_pos(map_p ⋈_{iter=iter} param_i))
      msg_p   = f(req_1_p, ..., req_n_p) @ p          (one Bulk RPC)
      res_p   = π_{iter,pos,item}(msg_p ⋈_{iterp=iterp} map_p)
      result  = ⊎_{p ∈ peers} res_p                    (merge on iter)
    v} *)

open Xrpc_xml
module Message = Xrpc_soap.Message

type trace = (string * Table.t) list

(** [execute ~dst ~params ~request_meta ~call] runs the Figure-2 rule.
    [dst] and each parameter are [iter|pos|item] tables over the same loop;
    [call dest request] performs one network round trip.  Returns the
    result table plus the named intermediate tables (Figure 1). *)
let execute ~(dst : Table.t) ~(params : Table.t list)
    ~(module_uri : string) ~(location : string) ~(method_ : string)
    ?(query_id : Message.query_id option)
    ~(call : dest:string -> Message.request -> Message.t) () :
    Table.t * trace =
  let trace = ref [] in
  let note name t = trace := (name, t) :: !trace in
  note "dst" dst;
  List.iteri (fun i p -> note (Printf.sprintf "param%d" (i + 1)) p) params;
  (* peers = δ(π_item(dst)) — order of first occurrence is kept by δ *)
  let peers_t = Ops.distinct (Ops.project dst [ ("item", "item") ]) in
  let peers =
    List.map
      (fun row ->
        match row with
        | [ c ] -> Xdm.string_value (Table.item_cell c)
        | _ -> assert false)
      peers_t.Table.rows
  in
  let results =
    List.map
      (fun peer ->
        let peer_cell = Table.Item (Xdm.str peer) in
        (* map_p : iter -> iterp *)
        let selected = Ops.select_eq dst "item" peer_cell in
        let ranked =
          Ops.rank selected ~new_col:"iterp" ~order_by:[ "iter" ] ()
        in
        let map_p = Ops.project ranked [ ("iter", "iter"); ("iterp", "iterp") ] in
        note (Printf.sprintf "map_%s" peer) map_p;
        (* req_i_p per parameter *)
        let reqs =
          List.mapi
            (fun i param ->
              let joined = Ops.equi_join map_p "iter" param "iter" in
              let req =
                Ops.project joined
                  [ ("iterp", "iterp"); ("pos", "pos"); ("item", "item") ]
              in
              note (Printf.sprintf "req%d_%s" (i + 1) peer) req;
              req)
            params
        in
        (* assemble the Bulk RPC: one call per iterp, in iterp order *)
        let iterps = Table.iters (Ops.project map_p [ ("iter", "iterp") ]) in
        let calls =
          List.map
            (fun iterp ->
              List.map
                (fun req ->
                  let as_iter =
                    Ops.project req
                      [ ("iter", "iterp"); ("pos", "pos"); ("item", "item") ]
                  in
                  Table.sequence_of as_iter ~iter:iterp)
                reqs)
            iterps
        in
        let request =
          {
            Message.module_uri;
            location;
            method_;
            arity = List.length params;
            updating = false;
            fragments = false;
            query_id;
            calls;
          }
        in
        let response = call ~dest:peer request in
        let result_seqs =
          match response with
          | Message.Response r -> r.Message.results
          | Message.Fault f ->
              Xdm.dyn_error "XRPC fault from %s: %s" peer f.Message.reason
          | _ -> Xdm.dyn_error "unexpected XRPC reply from %s" peer
        in
        (* msg_p : iterp|pos|item *)
        let msg_p =
          Table.make [ "iterp"; "pos"; "item" ]
            (List.concat
               (List.map2
                  (fun iterp seq ->
                    List.mapi
                      (fun p item ->
                        [ Table.Int iterp; Table.Int (p + 1); Table.Item item ])
                      seq)
                  iterps result_seqs))
        in
        note (Printf.sprintf "msg_%s" peer) msg_p;
        (* res_p : map iterp back to iter *)
        let joined = Ops.equi_join msg_p "iterp" map_p "iterp" in
        let res_p =
          Ops.project joined [ ("iter", "iter"); ("pos", "pos"); ("item", "item") ]
        in
        note (Printf.sprintf "res_%s" peer) res_p;
        res_p)
      peers
  in
  let result = Ops.merge_union_on_iter results in
  note "result" result;
  (result, List.rev !trace)
