(** Column tables — the [iter|pos|item] representation of §3.1.

    MonetDB/XQuery represents every XQuery sequence as a relational table
    with schema [pos|item]; under loop-lifting an extra [iter] column holds
    the logical iteration number.  Cells are either integers (for [iter] /
    [pos] / rank columns) or XDM items.  The pretty-printer reproduces the
    table layout used in Figure 1 of the paper. *)

open Xrpc_xml

type cell = Int of int | Item of Xdm.item

type t = {
  cols : string list;
  rows : cell list list;  (** each row has [List.length cols] cells *)
}

exception Schema_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let make cols rows =
  List.iter
    (fun r ->
      if List.length r <> List.length cols then
        err "row width %d does not match %d columns" (List.length r)
          (List.length cols))
    rows;
  { cols; rows }

let empty cols = { cols; rows = [] }
let cardinality t = List.length t.rows

let col_index t c =
  let rec go i = function
    | [] -> err "no column %S in table(%s)" c (String.concat "," t.cols)
    | c' :: _ when c' = c -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.cols

let cell t row c = List.nth row (col_index t c)

let int_cell = function
  | Int i -> i
  | Item (Xdm.Atomic (Xs.Integer i)) -> i
  | _ -> err "expected integer cell"

let item_cell = function
  | Item i -> i
  | Int i -> Xdm.Atomic (Xs.Integer i)

let cell_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Item (Xdm.Atomic x), Item (Xdm.Atomic y) -> (
      try Xs.equal_values x y with Xs.Type_error _ -> false)
  | Item (Xdm.Node x), Item (Xdm.Node y) -> Store.equal_nodes x y
  | Int x, Item (Xdm.Atomic (Xs.Integer y)) | Item (Xdm.Atomic (Xs.Integer x)), Int y ->
      x = y
  | _ -> false

let cell_compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Item (Xdm.Atomic x), Item (Xdm.Atomic y) -> Xs.compare_values x y
  | Item (Xdm.Node x), Item (Xdm.Node y) -> Store.compare_nodes x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Item (Xdm.Atomic _), Item (Xdm.Node _) -> -1
  | Item (Xdm.Node _), Item (Xdm.Atomic _) -> 1

let cell_to_string = function
  | Int i -> string_of_int i
  | Item (Xdm.Atomic a) -> Printf.sprintf "%S" (Xs.to_string a)
  | Item (Xdm.Node n) -> Serialize.to_string (Store.to_tree n)

(** Build the canonical [iter|pos|item] table from one XDM sequence per
    iteration. *)
let of_sequences (seqs : (int * Xdm.sequence) list) =
  make [ "iter"; "pos"; "item" ]
    (List.concat_map
       (fun (iter, seq) ->
         List.mapi (fun p item -> [ Int iter; Int (p + 1); Item item ]) seq)
       seqs)

(** Extract the sequence of a given iteration from an [iter|pos|item]
    table, in [pos] order. *)
let sequence_of t ~iter =
  let ii = col_index t "iter" and pi = col_index t "pos" and xi = col_index t "item" in
  t.rows
  |> List.filter (fun r -> int_cell (List.nth r ii) = iter)
  |> List.sort (fun a b ->
         Int.compare (int_cell (List.nth a pi)) (int_cell (List.nth b pi)))
  |> List.map (fun r -> item_cell (List.nth r xi))

(** Distinct iters present, ascending. *)
let iters t =
  let ii = col_index t "iter" in
  t.rows
  |> List.map (fun r -> int_cell (List.nth r ii))
  |> List.sort_uniq Int.compare

(** Figure-1 style rendering. *)
let to_string ?(max_item = 40) t =
  let render_cell c =
    let s = cell_to_string c in
    if String.length s > max_item then String.sub s 0 (max_item - 1) ^ "…" else s
  in
  let header = t.cols in
  let body = List.map (fun r -> List.map render_cell r) t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) body)
      header
  in
  let line cells =
    String.concat " | "
      (List.map2
         (fun w s -> s ^ String.make (max 0 (w - String.length s)) ' ')
         widths cells)
  in
  let sep = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line header :: sep :: List.map line body) @ [])
