(* Distributed query strategies for Q7 (§5 of the paper).

   persons.xml lives at peer A (a native XRPC peer); auctions.xml lives at
   peer B.  The same join runs four ways: data shipping, predicate
   push-down, execution relocation, and distributed semi-join.  Bulk RPC
   turns the semi-join's per-person probe into a single message. *)

module Cluster = Xrpc_core.Cluster
module Strategies = Xrpc_core.Strategies
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Xmark = Xrpc_workloads.Xmark

let () =
  let scale = Xmark.small_scale in
  let cluster = Cluster.create ~names:[ "A"; "B" ] () in
  let a = Cluster.peer cluster "A" and b = Cluster.peer cluster "B" in
  Database.add_doc_xml a.Peer.db "persons.xml"
    (Xmark.persons ~count:scale.Xmark.persons ());
  Database.add_doc_xml b.Peer.db "auctions.xml"
    (Xmark.auctions ~count:scale.Xmark.auctions ~matches:scale.Xmark.matches
       ~persons_count:scale.Xmark.persons ());
  let q7 =
    {
      Strategies.local_doc = "persons.xml";
      remote_uri = "xrpc://B";
      remote_doc = "auctions.xml";
      module_ns = "functions_b";
      module_at = "http://example.org/b.xq";
    }
  in
  Cluster.register_module_everywhere cluster ~uri:q7.Strategies.module_ns
    ~location:q7.Strategies.module_at (Strategies.functions_b q7);

  List.iter
    (fun strategy ->
      Cluster.reset_clock cluster;
      Cluster.reset_stats cluster;
      b.Peer.handler_ms <- 0.;
      let query = Strategies.query ~local_uri:"xrpc://A" q7 strategy in
      let t0 = Unix.gettimeofday () in
      let result = Peer.query_seq a query in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let stats = Cluster.stats cluster in
      (* wall time already includes both peers' CPU (in-process); add the
         modeled wire time for the total *)
      let total = wall_ms +. stats.Xrpc_net.Simnet.network_ms in
      Printf.printf
        "%-22s: %2d results, total %6.1f ms (A %6.1f + B %6.1f + wire %5.1f), %2d msgs, %7d bytes shipped\n"
        (Strategies.name strategy)
        (List.length result)
        total
        (wall_ms -. b.Peer.handler_ms)
        b.Peer.handler_ms
        stats.Xrpc_net.Simnet.network_ms
        stats.Xrpc_net.Simnet.messages
        (stats.Xrpc_net.Simnet.bytes_sent + stats.Xrpc_net.Simnet.bytes_received))
    Strategies.all
