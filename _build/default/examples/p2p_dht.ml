(* P2P data management with XRPC (§7 future work: "integrating XRPC with
   advanced P2P data structures such as Distributed Hash Tables").

   Eight peers form a hash ring; each stores the film records whose key
   hashes onto it, plus the same tiny lookup module.  A query routes with
   plain XRPC: the coordinator hashes each title, groups lookups by
   responsible peer, and — thanks to Bulk RPC — sends exactly one message
   per contacted peer no matter how many keys land there.  Writes use
   remote XQUF updating functions with repeatable-read isolation and 2PC,
   so a multi-peer insert is atomic. *)

module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
open Xrpc_xml

let n_peers = 8
let peer_name i = Printf.sprintf "p%d.ring" i
let hash key = Hashtbl.hash key mod n_peers

(* every ring member serves this module *)
let ring_module =
  {|module namespace ring = "ring";
declare function ring:lookup($title as xs:string) as node()*
{ doc("shard.xml")//film[name = $title] };
declare function ring:count() as xs:integer
{ count(doc("shard.xml")//film) };
declare updating function ring:store($title as xs:string, $actor as xs:string)
{ insert node <film><name>{$title}</name><actor>{$actor}</actor></film>
  into exactly-one(doc("shard.xml")/films) };
|}

let films =
  [
    ("The Rock", "Sean Connery"); ("Goldfinger", "Sean Connery");
    ("Green Card", "Gerard Depardieu"); ("Sound Of Music", "Julie Andrews");
    ("Dr. No", "Sean Connery"); ("Mary Poppins", "Julie Andrews");
    ("Cyrano", "Gerard Depardieu"); ("The Untouchables", "Sean Connery");
  ]

let () =
  (* build the ring *)
  let names = List.init n_peers peer_name in
  let cluster = Cluster.create ~names () in
  List.iteri
    (fun i name ->
      let p = Cluster.peer cluster name in
      let shard =
        List.filter (fun (t, _) -> hash t = i) films
        |> List.map (fun (t, a) ->
               Printf.sprintf "<film><name>%s</name><actor>%s</actor></film>" t a)
        |> String.concat ""
      in
      Database.add_doc_xml p.Peer.db "shard.xml"
        (Printf.sprintf "<films>%s</films>" shard);
      Peer.register_module p ~uri:"ring" ~location:"ring.xq" ring_module)
    names;
  let coordinator = Cluster.peer cluster (peer_name 0) in

  Printf.printf "ring of %d peers; placement:\n" n_peers;
  List.iter
    (fun (t, _) -> Printf.printf "  %-18s -> %s\n" t (peer_name (hash t)))
    films;

  (* distributed lookup: one query, keys routed by hash; Bulk RPC batches
     all keys that land on the same peer *)
  let wanted = [ "The Rock"; "Dr. No"; "Mary Poppins"; "Cyrano"; "Goldfinger" ] in
  let routed =
    String.concat ", "
      (List.map
         (fun t -> Printf.sprintf "(\"%s\", \"xrpc://%s\")" t (peer_name (hash t)))
         wanted)
  in
  let lookup_query =
    Printf.sprintf
      {|import module namespace ring = "ring" at "ring.xq";
for $i in (1 to %d)
let $title := (%s)[2 * $i - 1]
let $dest  := (%s)[2 * $i]
return execute at {$dest} {ring:lookup(string($title))}|}
      (List.length wanted) routed routed
  in
  Cluster.reset_stats cluster;
  let result = Peer.query_seq coordinator lookup_query in
  Printf.printf "\nlookup of %d keys:\n%s\n" (List.length wanted)
    (Xdm.to_display result);
  Printf.printf "messages used: %d (peers contacted: %d)\n"
    (Cluster.stats cluster).Xrpc_net.Simnet.messages
    ((Cluster.stats cluster).Xrpc_net.Simnet.messages / 2);

  (* atomic multi-peer write: two inserts land on different peers; 2PC
     commits both or neither *)
  let new_films = [ ("Highlander", "Sean Connery"); ("Victor Victoria", "Julie Andrews") ] in
  let writes =
    String.concat "\n"
      (List.map
         (fun (t, a) ->
           Printf.sprintf
             {|, execute at {"xrpc://%s"} {ring:store("%s", "%s")}|}
             (peer_name (hash t)) t a)
         new_films)
  in
  let write_query =
    Printf.sprintf
      {|import module namespace ring = "ring" at "ring.xq";
declare option xrpc:isolation "repeatable";
(() %s)|}
      writes
  in
  let r = Peer.query coordinator write_query in
  Printf.printf "\natomic 2-peer insert committed: %b (participants: %s)\n"
    r.Peer.committed
    (String.concat ", " r.Peer.participants);

  (* verify via a ring-wide count fan-out *)
  let dests =
    String.concat ", "
      (List.map (fun n -> Printf.sprintf "\"xrpc://%s\"" n) names)
  in
  let count_query =
    Printf.sprintf
      {|import module namespace ring = "ring" at "ring.xq";
sum(for $d in (%s) return execute at {$d} {ring:count()})|}
      dests
  in
  Printf.printf "total films on the ring: %s (was %d)\n"
    (Xdm.to_display (Peer.query_seq coordinator count_query))
    (List.length films)
