(* Film federation: Bulk RPC across multiple peers (queries Q2, Q3, Q6).

   Demonstrates:
   - Q2: an XRPC call inside a for-loop becomes ONE Bulk RPC message;
   - Q3: two destination peers, one Bulk RPC to each, dispatched in
     parallel (Figure 1 of the paper);
   - Q6: two call sites in one loop — the out-of-order execution effect;
   - the one-at-a-time mode for comparison (message counts differ). *)

module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Filmdb = Xrpc_workloads.Filmdb

let run_and_report cluster peer label query =
  Cluster.reset_clock cluster;
  Cluster.reset_stats cluster;
  let result = Peer.query_seq peer query in
  Printf.printf "== %s ==\n%s\n  -> %d messages, %.2f simulated ms\n\n" label
    (Xrpc_xml.Xdm.to_display result)
    (Cluster.stats cluster).Xrpc_net.Simnet.messages
    (Cluster.clock_ms cluster)

let () =
  let cluster =
    Cluster.create ~names:[ "x.example.org"; "y.example.org"; "z.example.org" ] ()
  in
  let x = Cluster.peer cluster "x.example.org" in
  Filmdb.install (Cluster.peer cluster "y.example.org") ();
  Filmdb.install (Cluster.peer cluster "z.example.org") ~variant:`Z ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;

  run_and_report cluster x "Q2: loop over actors, single destination (one Bulk RPC)"
    (Filmdb.q2 ~dest:"xrpc://y.example.org");
  run_and_report cluster x "Q3: loop over actors x two destinations (one Bulk RPC per peer)"
    (Filmdb.q3 ~dest1:"xrpc://y.example.org" ~dest2:"xrpc://z.example.org");
  run_and_report cluster x "Q6: two call sites, out-of-order bulk execution"
    (Filmdb.q6 ~dest:"xrpc://y.example.org");

  (* same Q2 with Bulk RPC disabled: one message per iteration *)
  x.Peer.config <- { x.Peer.config with Peer.bulk_rpc = false };
  run_and_report cluster x "Q2 again, one-at-a-time RPC (bulk disabled)"
    (Filmdb.q2 ~dest:"xrpc://y.example.org")
