(* Distributed updates over XRPC (§2.3): calling XQUF updating functions
   remotely, with repeatable-read isolation and 2PC atomic commit.

   The query adds a film on BOTH remote peers from one query; under
   `declare option xrpc:isolation "repeatable"` the pending update lists
   are deferred on each peer and committed atomically with the
   WS-AtomicTransaction-style Prepare/Commit exchange. *)

module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Filmdb = Xrpc_workloads.Filmdb

let count_films peer label =
  let r = Peer.query_seq peer {|count(doc("filmDB.xml")//film)|} in
  Printf.printf "%-16s: %s films\n" label (Xrpc_xml.Xdm.to_display r)

let () =
  let cluster =
    Cluster.create ~names:[ "x.example.org"; "y.example.org"; "z.example.org" ] ()
  in
  let x = Cluster.peer cluster "x.example.org" in
  let y = Cluster.peer cluster "y.example.org" in
  let z = Cluster.peer cluster "z.example.org" in
  Filmdb.install y ();
  Filmdb.install z ~variant:`Z ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;

  count_films y "y before";
  count_films z "z before";

  let update_query =
    {|import module namespace f="films" at "http://x.example.org/film.xq";
declare option xrpc:isolation "repeatable";
declare option xrpc:timeout "60";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:addFilm("The Hunt for Red October", "Sean Connery")}|}
  in
  let r = Peer.query x update_query in
  Printf.printf "distributed update committed: %b (participants: %s)\n"
    r.Peer.committed
    (String.concat ", " r.Peer.participants);

  count_films y "y after";
  count_films z "z after";

  (* read back over XRPC to confirm both peers applied the update *)
  let check =
    {|import module namespace f="films" at "http://x.example.org/film.xq";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return count(execute at {$dst} {f:filmsByActor("Sean Connery")})|}
  in
  Printf.printf "Connery films per peer: %s\n"
    (Xrpc_xml.Xdm.to_display (Peer.query_seq x check))
