examples/p2p_dht.ml: Hashtbl List Printf String Xdm Xrpc_core Xrpc_net Xrpc_peer Xrpc_xml
