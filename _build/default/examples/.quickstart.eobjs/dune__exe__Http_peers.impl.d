examples/http_peers.ml: Printf Xrpc_net Xrpc_peer Xrpc_workloads Xrpc_xml
