examples/film_federation.mli:
