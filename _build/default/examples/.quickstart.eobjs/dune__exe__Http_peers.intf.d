examples/http_peers.mli:
