examples/soap_interop.ml: List Printf Qname String Tree Xml_parse Xrpc_net Xrpc_peer Xrpc_workloads Xrpc_xml
