examples/p2p_dht.mli:
