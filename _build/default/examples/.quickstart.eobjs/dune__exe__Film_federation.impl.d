examples/film_federation.ml: Printf Xrpc_core Xrpc_net Xrpc_peer Xrpc_workloads Xrpc_xml
