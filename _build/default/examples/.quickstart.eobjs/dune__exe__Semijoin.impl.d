examples/semijoin.ml: List Printf Unix Xrpc_core Xrpc_net Xrpc_peer Xrpc_workloads
