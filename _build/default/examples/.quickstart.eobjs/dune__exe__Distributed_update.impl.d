examples/distributed_update.ml: Printf String Xrpc_core Xrpc_peer Xrpc_workloads Xrpc_xml
