examples/quickstart.mli:
