examples/soap_interop.mli:
