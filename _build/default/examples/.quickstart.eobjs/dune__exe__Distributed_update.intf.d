examples/distributed_update.mli:
