examples/semijoin.mli:
