(* Quickstart: the paper's Q1 — call a remote XQuery function with XRPC.

   Two peers on a simulated network: x.example.org originates the query,
   y.example.org holds the film database.  The query imports the films
   module and executes filmsByActor("Sean Connery") at y. *)

module Cluster = Xrpc_core.Cluster
module Peer = Xrpc_peer.Peer
module Filmdb = Xrpc_workloads.Filmdb

let () =
  (* 1. build a two-peer cluster over the deterministic simulated network *)
  let cluster = Cluster.create ~names:[ "x.example.org"; "y.example.org" ] () in
  let x = Cluster.peer cluster "x.example.org" in
  let y = Cluster.peer cluster "y.example.org" in

  (* 2. install the film database + films module on the remote peer; the
        local peer needs the module too (it imports it to learn signatures) *)
  Filmdb.install y ();
  Peer.register_module x ~uri:Filmdb.module_ns ~location:Filmdb.module_at
    Filmdb.film_module;

  (* 3. run Q1 at x *)
  let query = Filmdb.q1 ~dest:"xrpc://y.example.org" in
  print_endline "-- query --";
  print_endline query;
  let result = Peer.query_seq x query in

  print_endline "-- result --";
  print_endline (Xrpc_xml.Xdm.to_display result);
  Printf.printf "\nsimulated network time: %.2f ms, %d messages\n"
    (Cluster.clock_ms cluster) (Cluster.stats cluster).Xrpc_net.Simnet.messages
