test/test_peer.mli:
