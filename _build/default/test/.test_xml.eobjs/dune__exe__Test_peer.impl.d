test/test_peer.ml: Alcotest List Printf Qname Store String Xdm Xrpc_peer Xrpc_soap Xrpc_workloads Xrpc_xml
