test/test_updates.mli:
