test/test_check.ml: Alcotest List String Xrpc_workloads Xrpc_xquery
