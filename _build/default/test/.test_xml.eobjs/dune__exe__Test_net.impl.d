test/test_net.ml: Alcotest Atomic Char Float Fun List Printf String Thread Unix Xrpc_net Xrpc_peer Xrpc_soap Xrpc_workloads Xrpc_xml
