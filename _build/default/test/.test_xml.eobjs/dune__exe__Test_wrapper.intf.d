test/test_wrapper.mli:
