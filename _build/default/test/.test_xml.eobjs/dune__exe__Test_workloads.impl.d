test/test_workloads.ml: Alcotest List Qname Store String Xml_parse Xrpc_workloads Xrpc_xml Xrpc_xquery
