test/test_xquery.ml: Alcotest Lazy List Option Printf QCheck QCheck_alcotest Qname Store String Xdm Xml_parse Xrpc_workloads Xrpc_xml Xrpc_xquery Xs
