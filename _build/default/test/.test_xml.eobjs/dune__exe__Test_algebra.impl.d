test/test_algebra.ml: Alcotest Lazy List Printf QCheck QCheck_alcotest Store String Xdm Xml_parse Xrpc_algebra Xrpc_soap Xrpc_workloads Xrpc_xml Xrpc_xquery
