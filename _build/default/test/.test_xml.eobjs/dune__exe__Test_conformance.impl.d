test/test_conformance.ml: Alcotest Lazy List Store Xdm Xml_parse Xrpc_xml Xrpc_xquery Xs
