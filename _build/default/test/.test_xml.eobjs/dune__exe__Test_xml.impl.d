test/test_xml.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qname Serialize Store String Tree Xdm Xml_parse Xrpc_workloads Xrpc_xml Xs
