test/test_soap.ml: Alcotest Float List Printf QCheck QCheck_alcotest Qname Serialize Store String Tree Xdm Xml_parse Xrpc_soap Xrpc_xml Xs
