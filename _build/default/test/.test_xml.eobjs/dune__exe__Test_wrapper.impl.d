test/test_wrapper.ml: Alcotest List Option Printf Qname Store String Xdm Xrpc_core Xrpc_net Xrpc_peer Xrpc_soap Xrpc_workloads Xrpc_xml Xrpc_xquery Xs
