test/test_updates.ml: Alcotest List Serialize Store String Xdm Xrpc_peer Xrpc_xml Xrpc_xquery
