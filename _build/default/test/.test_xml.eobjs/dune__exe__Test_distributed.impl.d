test/test_distributed.ml: Alcotest Fun List Printf String Xdm Xrpc_core Xrpc_net Xrpc_peer Xrpc_soap Xrpc_workloads Xrpc_xml Xrpc_xquery Xs
