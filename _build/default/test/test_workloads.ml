(* Tests for the workload generators: determinism, the paper's join
   selectivity, and well-formedness of everything they emit. *)

open Xrpc_xml
module Xmark = Xrpc_workloads.Xmark
module Filmdb = Xrpc_workloads.Filmdb
module Testmod = Xrpc_workloads.Testmod

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let count_elems store local =
  List.length
    (List.filter
       (fun n ->
         Store.kind n = Store.Elem
         && (match Store.name n with
            | Some q -> q.Qname.local = local
            | None -> false))
       (Store.descendants (Store.root store)))

let test_persons_shape () =
  let xml = Xmark.persons ~count:37 () in
  let store = Store.shred (Xml_parse.document xml) in
  check int_ "37 persons" 37 (count_elems store "person");
  (* every person has a unique sequential id *)
  let ids =
    List.filter_map
      (fun n ->
        if Store.kind n = Store.Attr
           && (match Store.name n with
              | Some q -> q.Qname.local = "id"
              | None -> false)
        then Some (Store.string_value n)
        else None)
      (List.concat_map
         (fun n -> Store.attributes n)
         (List.filter
            (fun n ->
              Store.kind n = Store.Elem
              && (match Store.name n with
                 | Some q -> q.Qname.local = "person"
                 | None -> false))
            (Store.descendants (Store.root store))))
  in
  check int_ "unique ids" 37 (List.length (List.sort_uniq compare ids))

let test_generators_deterministic () =
  check bool_ "persons deterministic" true
    (String.equal (Xmark.persons ~count:20 ()) (Xmark.persons ~count:20 ()));
  check bool_ "auctions deterministic" true
    (String.equal
       (Xmark.auctions ~count:50 ~matches:4 ~persons_count:20 ())
       (Xmark.auctions ~count:50 ~matches:4 ~persons_count:20 ()));
  check bool_ "different seeds differ" false
    (String.equal (Xmark.persons ~count:20 ())
       (Xmark.persons ~seed:99 ~count:20 ()))

let test_join_selectivity () =
  (* the paper's experiment needs exactly `matches` closed auctions whose
     buyer is one of the persons — with distinct buyers *)
  let persons_count = 40 and matches = 6 in
  let store =
    Store.shred
      (Xml_parse.document
         (Xmark.auctions ~count:200 ~matches ~persons_count ()))
  in
  let buyers =
    List.filter_map
      (fun n ->
        match (Store.kind n, Store.name n) with
        | Store.Elem, Some q when q.Qname.local = "buyer" -> (
            match Store.attributes n with
            | a :: _ -> Some (Store.string_value a)
            | [] -> None)
        | _ -> None)
      (Store.descendants (Store.root store))
  in
  let matching =
    List.filter
      (fun b ->
        match int_of_string_opt (String.sub b 6 (String.length b - 6)) with
        | Some i -> i < persons_count
        | None -> false)
      buyers
  in
  check int_ "exactly `matches` matching buyers" matches (List.length matching);
  check int_ "matching buyers distinct" matches
    (List.length (List.sort_uniq compare matching))

let test_auctions_structure () =
  let store =
    Store.shred
      (Xml_parse.document (Xmark.auctions ~count:30 ~matches:3 ~persons_count:10 ()))
  in
  check int_ "closed auctions" 30 (count_elems store "closed_auction");
  check int_ "every auction has an annotation" 30 (count_elems store "annotation");
  check bool_ "has filler items" true (count_elems store "item" > 0);
  check bool_ "has open auctions" true (count_elems store "open_auction" > 0)

let test_film_module_parses () =
  let prog = Xrpc_xquery.Parser.parse_prog Filmdb.film_module in
  check bool_ "library module" true (prog.Xrpc_xquery.Ast.module_decl <> None);
  let decls =
    List.filter_map
      (function Xrpc_xquery.Ast.P_function f -> Some f | _ -> None)
      prog.Xrpc_xquery.Ast.prolog
  in
  check int_ "four functions" 4 (List.length decls);
  check int_ "two updating" 2
    (List.length (List.filter (fun f -> f.Xrpc_xquery.Ast.fn_updating) decls))

let test_test_module_parses () =
  let prog = Xrpc_xquery.Parser.parse_prog Testmod.test_module in
  check bool_ "parses" true (prog.Xrpc_xquery.Ast.module_decl <> None)

let test_film_db_well_formed () =
  List.iter
    (fun xml ->
      let store = Store.shred (Xml_parse.document xml) in
      check int_ "three films" 3 (count_elems store "film"))
    [ Filmdb.film_db_xml; Filmdb.film_db_xml_z ]

let () =
  Alcotest.run "workloads"
    [
      ( "xmark",
        [
          Alcotest.test_case "persons shape" `Quick test_persons_shape;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "join selectivity" `Quick test_join_selectivity;
          Alcotest.test_case "auctions structure" `Quick test_auctions_structure;
        ] );
      ( "modules",
        [
          Alcotest.test_case "film module" `Quick test_film_module_parses;
          Alcotest.test_case "test module" `Quick test_test_module_parses;
          Alcotest.test_case "film dbs" `Quick test_film_db_well_formed;
        ] );
    ]
