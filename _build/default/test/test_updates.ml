(* Tests for the XQUF machinery: update primitives, pending update lists,
   applyUpdates document rebuilding, fn:put, and the updating semantics of
   rules R_Fu / R'_Fu at a single peer. *)

open Xrpc_xml
module Update = Xrpc_xquery.Update
module Context = Xrpc_xquery.Context
module Runner = Xrpc_xquery.Runner
module Database = Xrpc_peer.Database

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let resolver ~uri:_ ~location:_ = failwith "no modules"

(* run an updating query against one document; returns the document after
   applyUpdates *)
let run_update ?(doc = "<films><film><name>A</name></film><film><name>B</name></film></films>")
    query =
  let db = Database.create () in
  Database.add_doc_xml db "d.xml" doc;
  let ctx =
    {
      (Context.empty ()) with
      Context.doc_resolver =
        (fun name -> Database.doc_exn (Database.snapshot db) name);
    }
  in
  let result, pul = Runner.run ~ctx ~resolver query in
  check int_ "updating query yields empty sequence" 0 (List.length result);
  Database.commit db pul;
  Serialize.to_string
    (Store.to_tree (Store.root (Database.doc_exn (Database.snapshot db) "d.xml")))

let stripped s =
  (* document node serialization *)
  s

let test_insert_into () =
  let after =
    run_update {|insert node <film><name>C</name></film> into exactly-one(doc("d.xml")/films)|}
  in
  check string_ "appended"
    "<films><film><name>A</name></film><film><name>B</name></film><film><name>C</name></film></films>"
    (stripped after)

let test_insert_as_first () =
  let after =
    run_update {|insert node <film><name>Z</name></film> as first into exactly-one(doc("d.xml")/films)|}
  in
  check bool_ "prepended" true
    (String.length after > 30 && String.sub after 0 30 = "<films><film><name>Z</name></f")

let test_insert_before_after () =
  let after =
    run_update
      {|(insert node <x/> before exactly-one(doc("d.xml")//film[name="B"]),
         insert node <y/> after exactly-one(doc("d.xml")//film[name="A"]))|}
  in
  check string_ "positioned"
    "<films><film><name>A</name></film><y/><x/><film><name>B</name></film></films>"
    after

let test_delete () =
  let after = run_update {|delete nodes doc("d.xml")//film[name = "A"]|} in
  check string_ "deleted" "<films><film><name>B</name></film></films>" after

let test_delete_multiple () =
  let after = run_update {|delete nodes doc("d.xml")//film|} in
  check string_ "all gone" "<films/>" after

let test_replace_node () =
  let after =
    run_update {|replace node exactly-one(doc("d.xml")//film[name="A"]) with <film><name>R</name></film>|}
  in
  check string_ "replaced"
    "<films><film><name>R</name></film><film><name>B</name></film></films>" after

let test_replace_value () =
  let after =
    run_update {|replace value of node exactly-one(doc("d.xml")//film[1]/name) with "NEW"|}
  in
  check string_ "value replaced"
    "<films><film><name>NEW</name></film><film><name>B</name></film></films>" after

let test_rename () =
  let after = run_update {|rename node exactly-one(doc("d.xml")/films) as "movies"|} in
  check bool_ "renamed" true
    (String.sub after 0 8 = "<movies>")

let test_insert_attribute () =
  let after =
    run_update {|insert node attribute year {1996} into exactly-one(doc("d.xml")//film[1])|}
  in
  check string_ "attribute added"
    "<films><film year=\"1996\"><name>A</name></film><film><name>B</name></film></films>"
    after

let test_delete_attribute () =
  let after =
    run_update ~doc:"<a x=\"1\" y=\"2\"/>" {|delete nodes doc("d.xml")/a/@x|}
  in
  check string_ "attr deleted" "<a y=\"2\"/>" after

let test_replace_attribute_value () =
  let after =
    run_update ~doc:"<a x=\"1\"/>"
      {|replace value of node exactly-one(doc("d.xml")/a/@x) with "9"|}
  in
  check string_ "attr value" "<a x=\"9\"/>" after

let test_updates_invisible_during_query () =
  (* XQUF: the database state is constant during evaluation; the query sees
     pre-update state even after emitting update primitives *)
  let db = Database.create () in
  Database.add_doc_xml db "d.xml" "<a><b/></a>";
  let ctx =
    {
      (Context.empty ()) with
      Context.doc_resolver =
        (fun name -> Database.doc_exn (Database.snapshot db) name);
    }
  in
  let result, pul =
    Runner.run ~ctx ~resolver
      {|(delete nodes doc("d.xml")//b, count(doc("d.xml")//b))|}
  in
  check string_ "still sees b" "1" (Xdm.to_display result);
  check int_ "one primitive" 1 (List.length pul)

let test_multiple_updates_same_query () =
  let after =
    run_update
      {|for $f in doc("d.xml")//film return insert node <seen/> into $f|}
  in
  (* insert into appends inside each target film *)
  check string_ "both films updated"
    "<films><film><name>A</name><seen/></film><film><name>B</name><seen/></film></films>"
    (stripped after)

let test_fn_put () =
  let db = Database.create () in
  Database.add_doc_xml db "d.xml" "<a/>";
  let ctx =
    {
      (Context.empty ()) with
      Context.doc_resolver =
        (fun name -> Database.doc_exn (Database.snapshot db) name);
    }
  in
  let _, pul = Runner.run ~ctx ~resolver {|put(<copy><of/></copy>, "new.xml")|} in
  Database.commit db pul;
  let s = Database.doc_exn (Database.snapshot db) "new.xml" in
  check string_ "stored" "<copy><of/></copy>"
    (Serialize.to_string (Store.to_tree (Store.root s)))

let test_snapshot_isolation_of_versions () =
  (* older snapshots keep reading the pre-commit state *)
  let db = Database.create () in
  Database.add_doc_xml db "d.xml" "<a><b/></a>";
  let before = Database.snapshot db in
  let ctx =
    {
      (Context.empty ()) with
      Context.doc_resolver = (fun name -> Database.doc_exn before name);
    }
  in
  let _, pul = Runner.run ~ctx ~resolver {|delete nodes doc("d.xml")//b|} in
  Database.commit db pul;
  let count v =
    let s = Database.doc_exn v "d.xml" in
    List.length (Store.descendants (Store.root s))
  in
  check int_ "old snapshot unchanged" 2 (count before);
  check int_ "new version updated" 1 (count (Database.snapshot db))

let test_touched_docs () =
  let db = Database.create () in
  Database.add_doc_xml db "d.xml" "<a><b/></a>";
  let ctx =
    {
      (Context.empty ()) with
      Context.doc_resolver =
        (fun name -> Database.doc_exn (Database.snapshot db) name);
    }
  in
  let _, pul = Runner.run ~ctx ~resolver {|delete nodes doc("d.xml")//b|} in
  check (Alcotest.list string_) "touched" [ "d.xml" ] (Database.touched_docs pul)

let test_cannot_delete_root () =
  let db = Database.create () in
  Database.add_doc_xml db "d.xml" "<a/>";
  let ctx =
    {
      (Context.empty ()) with
      Context.doc_resolver =
        (fun name -> Database.doc_exn (Database.snapshot db) name);
    }
  in
  let _, pul =
    Runner.run ~ctx ~resolver {|delete nodes root(exactly-one(doc("d.xml")/a))|}
  in
  match Database.commit db pul with
  | exception Update.Update_error _ -> ()
  | () -> Alcotest.fail "expected Update_error"

let test_pul_union_unordered () =
  (* §2.3: PULs from separate calls can be unioned in any order *)
  let doc = "<films><film><name>A</name></film><film><name>B</name></film></films>" in
  let db1 = Database.create () and db2 = Database.create () in
  Database.add_doc_xml db1 "d.xml" doc;
  Database.add_doc_xml db2 "d.xml" doc;
  let make db =
    {
      (Context.empty ()) with
      Context.doc_resolver =
        (fun name -> Database.doc_exn (Database.snapshot db) name);
    }
  in
  let q1 = {|insert node <x/> into exactly-one(doc("d.xml")//film[1])|} in
  let q2 = {|insert node <y/> into exactly-one(doc("d.xml")//film[2])|} in
  let _, p1a = Runner.run ~ctx:(make db1) ~resolver q1 in
  let _, p1b = Runner.run ~ctx:(make db1) ~resolver q2 in
  let _, p2a = Runner.run ~ctx:(make db2) ~resolver q2 in
  let _, p2b = Runner.run ~ctx:(make db2) ~resolver q1 in
  Database.commit db1 (p1a @ p1b);
  Database.commit db2 (p2b @ p2a);
  let show db =
    Serialize.to_string
      (Store.to_tree (Store.root (Database.doc_exn (Database.snapshot db) "d.xml")))
  in
  check string_ "order independent" (show db1) (show db2)

let () =
  Alcotest.run "updates"
    [
      ( "primitives",
        [
          Alcotest.test_case "insert into" `Quick test_insert_into;
          Alcotest.test_case "insert as first" `Quick test_insert_as_first;
          Alcotest.test_case "insert before/after" `Quick test_insert_before_after;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete multiple" `Quick test_delete_multiple;
          Alcotest.test_case "replace node" `Quick test_replace_node;
          Alcotest.test_case "replace value" `Quick test_replace_value;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "insert attribute" `Quick test_insert_attribute;
          Alcotest.test_case "delete attribute" `Quick test_delete_attribute;
          Alcotest.test_case "replace attribute value" `Quick
            test_replace_attribute_value;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "updates invisible during query" `Quick
            test_updates_invisible_during_query;
          Alcotest.test_case "loop of inserts" `Quick test_multiple_updates_same_query;
          Alcotest.test_case "fn:put" `Quick test_fn_put;
          Alcotest.test_case "snapshot versions" `Quick
            test_snapshot_isolation_of_versions;
          Alcotest.test_case "touched docs" `Quick test_touched_docs;
          Alcotest.test_case "cannot delete root" `Quick test_cannot_delete_root;
          Alcotest.test_case "PUL union unordered" `Quick test_pul_union_unordered;
        ] );
    ]
