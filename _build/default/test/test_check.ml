(* Tests for the static checker: XPST0008 (unbound variables), XPST0017
   (unknown functions), scoping of FLWOR/quantifier/typeswitch binders,
   and the execute-at import requirement. *)

module Check = Xrpc_xquery.Check
module Parser = Xrpc_xquery.Parser
module Context = Xrpc_xquery.Context
module Runner = Xrpc_xquery.Runner

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let resolver ~uri ~location:_ =
  if uri = "films" then Xrpc_workloads.Filmdb.film_module
  else failwith ("no module " ^ uri)

let errors_of src =
  let prog = Parser.parse_prog src in
  let ctx = Runner.load_prolog (Context.empty ()) ~resolver prog in
  Check.check_prog ctx prog

let codes src = List.map (fun e -> e.Check.code) (errors_of src)

let test_clean_programs () =
  List.iter
    (fun src -> check int_ ("clean: " ^ src) 0 (List.length (errors_of src)))
    [
      "for $x in 1 to 3 return $x";
      "let $a := 1 return $a + count(())";
      "declare variable $g := 5; $g * 2";
      "declare function local:f($p) { $p }; local:f(1)";
      "some $v in (1,2) satisfies $v > 1";
      "typeswitch (1) case $i as xs:integer return $i default $d return $d";
      {|import module namespace f="films" at "x";
        execute at {"xrpc://y"} {f:filmsByActor("A")}|};
      {|<e a="{1 + 1}">{2}</e>|};
      "xs:integer(\"3\")";
    ]

let test_unbound_variable () =
  check (Alcotest.list Alcotest.string) "XPST0008" [ "XPST0008" ] (codes "$nope");
  check (Alcotest.list Alcotest.string) "out of scope after flwor"
    [ "XPST0008" ]
    (codes "(for $x in (1) return $x, $x)");
  check (Alcotest.list Alcotest.string) "where sees binder" []
    (codes "for $x in (1) where $x > 0 return $x");
  check (Alcotest.list Alcotest.string) "for binding cannot self-reference"
    [ "XPST0008" ]
    (codes "for $x in $x return 1")

let test_unknown_function () =
  (* an unbound prefix is already a (parse-time) static error *)
  (match errors_of "no:such()" with
  | exception Parser.Syntax_error _ -> ()
  | _ -> Alcotest.fail "unbound prefix should not parse");
  check (Alcotest.list Alcotest.string) "XPST0017" [ "XPST0017" ]
    (codes {|declare namespace no = "nowhere"; no:such()|});
  check (Alcotest.list Alcotest.string) "wrong arity" [ "XPST0017" ]
    (codes "count(1, 2, 3)")

let test_function_body_checked () =
  let errs =
    errors_of "declare function local:f($p) { $q }; 1"
  in
  check int_ "error in body" 1 (List.length errs);
  check bool_ "names the function" true
    (let m = (List.hd errs).Check.message in
     let sub = "local:f" in
     let n = String.length sub in
     let rec go i = i + n <= String.length m && (String.sub m i n = sub || go (i + 1)) in
     go 0)

let test_execute_at_requires_import () =
  match
    codes
      {|declare namespace g = "ghost";
        execute at {"xrpc://y"} {g:unknownRemote(1)}|}
  with
  | [ "XPST0017" ] -> ()
  | other -> Alcotest.fail ("expected XPST0017, got " ^ String.concat "," other)

let test_typeswitch_scoping () =
  check (Alcotest.list Alcotest.string) "case var only in its branch"
    [ "XPST0008" ]
    (codes
       "typeswitch (1) case $i as xs:integer return 0 default return $i")

let test_quantifier_scoping () =
  check (Alcotest.list Alcotest.string) "satisfies sees binders" []
    (codes "every $a in (1), $b in (2) satisfies $a < $b");
  check (Alcotest.list Alcotest.string) "binder leaks nowhere"
    [ "XPST0008" ]
    (codes "(some $a in (1) satisfies $a > 0, $a)")

let () =
  Alcotest.run "check"
    [
      ( "static",
        [
          Alcotest.test_case "clean programs" `Quick test_clean_programs;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
          Alcotest.test_case "function bodies" `Quick test_function_body_checked;
          Alcotest.test_case "execute at import" `Quick
            test_execute_at_requires_import;
          Alcotest.test_case "typeswitch scoping" `Quick test_typeswitch_scoping;
          Alcotest.test_case "quantifier scoping" `Quick test_quantifier_scoping;
        ] );
    ]
