(* Tests for the XQuery engine: lexer, parser, evaluation of the language
   subset, built-ins, modules, and error behaviour.  Each case runs a query
   string and compares the displayed result. *)

open Xrpc_xml
module Lexer = Xrpc_xquery.Lexer
module Parser = Xrpc_xquery.Parser
module Ast = Xrpc_xquery.Ast
module Context = Xrpc_xquery.Context
module Runner = Xrpc_xquery.Runner

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool

let film_store =
  lazy
    (Store.shred ~uri:"filmDB.xml"
       (Xml_parse.document Xrpc_workloads.Filmdb.film_db_xml))

let resolver ~uri ~location:_ =
  if uri = "films" then Xrpc_workloads.Filmdb.film_module
  else failwith ("no module " ^ uri)

let run ?(ctx = Context.empty ()) q =
  let ctx =
    { ctx with Context.doc_resolver = (fun _ -> Lazy.force film_store) }
  in
  let result, _ = Runner.run ~ctx ~resolver q in
  Xdm.to_display result

let expect name q expected () = check string_ name expected (run q)

let expect_error name q () =
  match run q with
  | exception
      ( Xdm.Dynamic_error _ | Xrpc_xquery.Eval.Error _
      | Parser.Syntax_error _ | Xs.Type_error _ ) ->
      ()
  | r -> Alcotest.fail (Printf.sprintf "%s: expected error, got %s" name r)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let collect_tokens src =
  let lx = Lexer.make src in
  let rec go acc =
    match lx.Lexer.tok with
    | Lexer.Eof -> List.rev acc
    | t ->
        Lexer.next lx;
        go (Lexer.token_to_string t :: acc)
  in
  go []

let test_lexer_basics () =
  check (Alcotest.list string_) "tokens"
    [ "for"; "$x"; "in"; "("; "1"; "to"; "3"; ")"; "return"; "$x"; "*"; "2" ]
    (collect_tokens "for $x in (1 to 3) return $x * 2")

let test_lexer_qnames_axes () =
  check (Alcotest.list string_) "axis vs qname"
    [ "child"; "::"; "a"; "/"; "f:g"; "("; ")"; "/"; "@"; "id" ]
    (collect_tokens "child::a/f:g()/@id")

let test_lexer_comments_strings () =
  check (Alcotest.list string_) "nested comments skipped"
    [ {|"a'b"|}; {|"c\"d"|} ]
    (collect_tokens "(: outer (: inner :) still :) 'a''b' \"c\"\"d\"");
  check (Alcotest.list string_) "numbers" [ "1"; "2.5"; "3."; "0.5" ]
    (collect_tokens "1 2.5 3.0e0 5.0e-1")

(* ------------------------------------------------------------------ *)
(* Parser shape                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_execute_at () =
  match Parser.parse_expression {|execute at {"xrpc://y"} {local:g(1, "a")}|} with
  | Ast.Execute_at (Ast.Literal (Xs.String "xrpc://y"), q, [ _; _ ]) ->
      check string_ "fname" "g" q.Qname.local
  | e -> Alcotest.fail ("wrong shape: " ^ Ast.expr_to_string e)

let test_parse_precedence () =
  (* 1 + 2 * 3 = 7, and comparison binds loosest *)
  check string_ "arith precedence" "7" (run "1 + 2 * 3");
  check string_ "unary minus" "-1" (run "1 - 2");
  check string_ "comparison" "true" (run "1 + 1 = 2")

let test_parse_reserved_names_as_steps () =
  (* element names that look like keywords must still work in paths *)
  let ctx = Context.empty () in
  let ctx =
    {
      ctx with
      Context.doc_resolver =
        (fun _ ->
          Store.shred (Xml_parse.document "<if><then>x</then></if>"));
    }
  in
  let r, _ = Runner.run ~ctx ~resolver {|string(doc("d")/if/then)|} in
  check string_ "keyword element names" "x" (Xdm.to_display r)

let test_parse_errors () =
  List.iter
    (fun q -> expect_error ("syntax: " ^ q) q ())
    [ "for $x in"; "1 +"; "<a>"; "if (1) then 2"; "execute at {1}" ]

(* ------------------------------------------------------------------ *)
(* Core expressions                                                    *)
(* ------------------------------------------------------------------ *)

let basic_cases =
  [
    ("integer literal", "42", "42");
    ("decimal arith", "1.5 * 2", "3");
    ("division yields decimal", "7 div 2", "3.5");
    ("idiv", "7 idiv 2", "3");
    ("mod", "7 mod 2", "1");
    ("string literal escape", {|"say ""hi"""|}, {|say "hi"|});
    ("sequence flattening", "((1,2),(3,(4)))", "1 2 3 4");
    ("empty sequence", "()", "");
    ("range", "2 to 5", "2 3 4 5");
    ("reverse range empty", "5 to 2", "");
    ("if then else", "if (1 < 2) then \"y\" else \"n\"", "y");
    ("and or", "true() and (false() or true())", "true");
    ("general comparison existential", "(1,2,3) = (3,4)", "true");
    ("general comparison false", "(1,2) = (5,6)", "false");
    ("value comparison", "2 eq 2", "true");
    ("string comparison", {|"abc" < "abd"|}, "true");
    ("some quantifier", "some $x in (1,2,3) satisfies $x > 2", "true");
    ("every quantifier", "every $x in (1,2,3) satisfies $x > 0", "true");
    ("every false", "every $x in (1,2,3) satisfies $x > 1", "false");
    ("nested flwor", "for $x in (10,20) return for $y in (1,2) return $x+$y",
     "11 12 21 22");
    ("let", "let $x := 5 let $y := $x * $x return $y - $x", "20");
    ("where", "for $x in 1 to 10 where $x mod 3 = 0 return $x", "3 6 9");
    ("positional var", "for $x at $i in (\"a\",\"b\") return $i", "1 2");
    ("order by", "for $x in (3,1,2) order by $x return $x", "1 2 3");
    ("order by descending", "for $x in (3,1,2) order by $x descending return $x",
     "3 2 1");
    ("order by two keys",
     "for $p in ((1,2),(1,1),(0,9)) return ()", "");
    ("cast as", "\"17\" cast as xs:integer", "17");
    ("castable", "\"17\" castable as xs:integer", "true");
    ("castable false", "\"x\" castable as xs:integer", "false");
    ("xs constructor", "xs:integer(\"5\") + 1", "6");
    ("instance of", "(1,2) instance of xs:integer+", "true");
    ("instance of false", "(1, \"a\") instance of xs:integer*", "false");
    ("typeswitch atomic",
     "typeswitch (3.5) case xs:integer return \"i\" case xs:decimal return \"d\" default return \"o\"",
     "d");
    ("concat builtin", {|concat("a", "b", "c")|}, "abc");
    ("string-join", {|string-join(("a","b","c"), "-")|}, "a-b-c");
    ("substring", {|substring("hello", 2, 3)|}, "ell");
    ("contains", {|contains("hello", "ell")|}, "true");
    ("starts-with", {|starts-with("hello", "he")|}, "true");
    ("normalize-space", {|normalize-space("  a   b  ")|}, "a b");
    ("count", "count((1,2,3))", "3");
    ("empty", "empty(())", "true");
    ("exists", "exists((1))", "true");
    ("distinct-values", "distinct-values((1, 2, 1, 3, 2))", "1 2 3");
    ("index-of", "index-of((10,20,10), 10)", "1 3");
    ("insert-before", "insert-before((1,2,3), 2, (9))", "1 9 2 3");
    ("remove", "remove((1,2,3), 2)", "1 3");
    ("subsequence", "subsequence((1,2,3,4,5), 2, 3)", "2 3 4");
    ("reverse", "reverse((1,2,3))", "3 2 1");
    ("sum", "sum((1,2,3))", "6");
    ("avg", "avg((2,4))", "3");
    ("min max", "(min((3,1,2)), max((3,1,2)))", "1 3");
    ("floor ceiling round", "(floor(1.7), ceiling(1.2), round(1.5))", "1 2 2");
    ("abs", "abs(-3)", "3");
    ("zero-or-one ok", "zero-or-one(())", "");
    ("number of nan", "string(number(\"zzz\"))", "NaN");
    ("not", "not(())", "true");
    ("boolean of node-set", {|boolean(doc("filmDB.xml")//film)|}, "true");
    ("deep-equal", "deep-equal((1,2),(1,2))", "true");
    ("matches", {|matches("hello world", "w.rld")|}, "true");
    ("matches classes", {|matches("abc123", "[a-z]+\d+")|}, "true");
    ("matches false", {|matches("abc", "^\d+$")|}, "false");
    ("replace", {|replace("banana", "an", "X")|}, "bXXa");
    ("replace group", {|replace("ab", "(a)(b)", "$2$1")|}, "ba");
    ("tokenize", {|tokenize("a,b,,c", ",")|}, "a b  c");
    ("tokenize empty", {|tokenize("", ",")|}, "");
    ("tokenize ws", {|tokenize("the  quick brown", "\s+")|}, "the quick brown");
    ("translate", {|translate("bar", "abc", "ABC")|}, "BAr");
    ("translate removes", {|translate("-a-b-", "-", "")|}, "ab");
    ("codepoints", {|codepoints-to-string(string-to-codepoints("hi"))|}, "hi");
    ("compare", {|(compare("a","b"), compare("b","a"), compare("a","a"))|},
     "-1 1 0");
    ("intersect",
     {|count(doc("filmDB.xml")//film intersect doc("filmDB.xml")//film[actor="Sean Connery"])|},
     "2");
    ("except",
     {|string((doc("filmDB.xml")//film except doc("filmDB.xml")//film[actor="Sean Connery"])/name)|},
     "Green Card");
    ("intersect empty", {|count(doc("filmDB.xml")//film intersect ())|}, "0");
    ("date comparison", {|xs:date("2007-09-23") < xs:date("2007-09-28")|}, "true");
    ("dateTime tz-aware comparison",
     {|xs:dateTime("2007-09-23T12:00:00+02:00") = xs:dateTime("2007-09-23T10:00:00Z")|},
     "true");
    ("date order by",
     {|for $d in (xs:date("2007-12-01"), xs:date("2007-01-15"), xs:date("2006-06-30"))
       order by $d return string($d)|},
     "2006-06-30 2007-01-15 2007-12-01");
    ("date components",
     {|(year-from-date(xs:date("2007-09-23")), month-from-date(xs:date("2007-09-23")),
        day-from-date(xs:date("2007-09-23")))|},
     "2007 9 23");
    ("dateTime components",
     {|(hours-from-dateTime(xs:dateTime("2007-09-23T14:30:05")),
        minutes-from-dateTime(xs:dateTime("2007-09-23T14:30:05")),
        seconds-from-dateTime(xs:dateTime("2007-09-23T14:30:05")))|},
     "14 30 5");
    ("time components", {|hours-from-time(xs:time("23:59:01"))|}, "23");
  ]

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let path_cases =
  [
    ("descendant + predicate",
     {|doc("filmDB.xml")//name[../actor = "Sean Connery"]|},
     "<name>The Rock</name> <name>Goldfinger</name>");
    ("child steps", {|string(doc("filmDB.xml")/films/film[1]/name)|}, "The Rock");
    ("positional predicate", {|string(doc("filmDB.xml")//film[2]/name)|},
     "Goldfinger");
    ("last()", {|string(doc("filmDB.xml")//film[last()]/name)|}, "Green Card");
    ("position()", {|doc("filmDB.xml")//film[position() > 2]/string(name)|},
     "Green Card");
    ("attribute axis", {|<e a="1"/>/@a/string(.)|}, "1");
    ("parent axis", {|doc("filmDB.xml")//actor/../name/string(.)|},
     "The Rock Goldfinger Green Card");
    ("wildcard", {|count(doc("filmDB.xml")/films/*)|}, "3");
    ("local wildcard", {|count(doc("filmDB.xml")//*:actor)|}, "3");
    ("text()", {|(doc("filmDB.xml")//name/text())[1]|}, "The Rock");
    ("self axis", {|count(doc("filmDB.xml")//film/self::film)|}, "3");
    ("union dedups", {|count(doc("filmDB.xml")//film | doc("filmDB.xml")//film)|},
     "3");
    ("doc order after reverse step",
     {|doc("filmDB.xml")//actor/ancestor::film/string(name)|},
     "The Rock Goldfinger Green Card");
    ("following-sibling",
     {|string(doc("filmDB.xml")//film[1]/following-sibling::film[1]/name)|},
     "Goldfinger");
    ("preceding-sibling (reverse-axis position)",
     {|string(doc("filmDB.xml")//film[3]/preceding-sibling::film[1]/name)|},
     "Goldfinger");
    ("preceding-sibling last",
     {|string(doc("filmDB.xml")//film[3]/preceding-sibling::film[2]/name)|},
     "The Rock");
    ("node() kind test", {|count(doc("filmDB.xml")/films/node())|}, "3");
    ("predicate on filter expr", {|(1 to 10)[. mod 2 = 0]|}, "2 4 6 8 10");
    ("double slash from root", {|count(doc("filmDB.xml")//name)|}, "3");
  ]

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let constructor_cases =
  [
    ("direct element", "<a>text</a>", "<a>text</a>");
    ("nested with braces", "<a>{1 + 1}</a>", "<a>2</a>");
    ("attributes with exprs", {|<a x="v{1+1}w"/>|}, {|<a x="v2w"/>|});
    ("sequence in content", "<a>{1, 2, 3}</a>", "<a>1 2 3</a>");
    ("per-step positional predicate",
     {|count(doc("filmDB.xml")//name[1])|}, "3");
    ("node copy into constructor",
     {|<out>{(doc("filmDB.xml")//name)[1]}</out>|},
     "<out><name>The Rock</name></out>");
    ("computed element", {|element res {"x"}|}, "<res>x</res>");
    ("computed attribute", {|<e>{attribute id {42}}</e>|}, {|<e id="42"/>|});
    ("text constructor", {|<e>{text {"a"}}</e>|}, "<e>a</e>");
    ("comment constructor", {|comment {"hi"}|}, "<!--hi-->");
    ("brace escapes", "<a>{{literal}}</a>", "<a>{literal}</a>");
    ("empty element", "<a/>", "<a/>");
    ("boundary space stripped", "<a> <b/> </a>", "<a><b/></a>");
    ("constructed nodes are fresh fragments",
     "count((<a><b/></a>)/b/ancestor::*)", "1");
  ]

(* ------------------------------------------------------------------ *)
(* Functions & modules                                                 *)
(* ------------------------------------------------------------------ *)

let test_user_function () =
  check string_ "local function" "120"
    (run
       {|declare function local:fact($n as xs:integer) as xs:integer
         { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
         local:fact(5)|})

let test_mutual_recursion () =
  check string_ "mutual recursion" "true false"
    (run
       {|declare function local:even($n) { if ($n = 0) then true() else local:odd($n - 1) };
         declare function local:odd($n) { if ($n = 0) then false() else local:even($n - 1) };
         (local:even(10), local:odd(4))|})

let test_module_import () =
  check string_ "module function via import"
    "<name>The Rock</name> <name>Goldfinger</name>"
    (run
       {|import module namespace f="films" at "http://x.example.org/film.xq";
         f:filmsByActor("Sean Connery")|})

let test_global_variable () =
  check string_ "declared variable" "10"
    (run {|declare variable $x := 4; $x + 6|})

let test_declare_option () =
  let prog =
    Parser.parse_prog
      {|declare option xrpc:isolation "repeatable";
        declare option xrpc:timeout "17"; 1|}
  in
  let ctx = Runner.load_prolog (Context.empty ()) ~resolver prog in
  check bool_ "isolation" true (Context.isolation ctx = `Repeatable);
  check Alcotest.int "timeout" 17 (Context.timeout ctx)

let test_arity_mismatch () =
  expect_error "unknown arity"
    {|declare function local:f($x) { $x }; local:f(1, 2)|} ()

let test_unknown_function () = expect_error "unknown fn" "no:such(1)" ()
let test_undefined_variable () = expect_error "unbound var" "$nope" ()

let test_updating_flag_parsed () =
  let prog =
    Parser.parse_prog
      {|declare updating function local:u($x) { delete nodes $x }; 1|}
  in
  let f =
    List.find_map
      (function Ast.P_function f -> Some f | _ -> None)
      prog.Ast.prolog
  in
  check bool_ "updating" true (Option.get f).Ast.fn_updating

let test_is_updating_detection () =
  let ctx = Context.empty () in
  let prog = Parser.parse_prog {|delete nodes doc("filmDB.xml")//film|} in
  check bool_ "delete is updating" true (Runner.prog_is_updating ctx prog);
  let prog2 = Parser.parse_prog {|doc("filmDB.xml")//film|} in
  check bool_ "read-only" false (Runner.prog_is_updating ctx prog2)

let test_function_conversion_rules () =
  (* declared parameter types drive the XPath function conversion rules *)
  check string_ "untyped is cast to the declared type" "6"
    (run
       {|declare function local:dbl($n as xs:integer) { $n * 2 };
         local:dbl(exactly-one(<n>3</n>/self::node()))|});
  check string_ "integer promotes to double" "2.5"
    (run
       {|declare function local:half($n as xs:double) { $n div 2 };
         local:half(5)|});
  check string_ "atomization of node argument" "Sean Connery"
    (run
       {|declare function local:s($x as xs:string) { $x };
         local:s(exactly-one(doc("filmDB.xml")//film[1]/actor))|});
  expect_error "occurrence violated"
    {|declare function local:one($x as xs:integer) { $x };
      local:one((1, 2))|} ();
  expect_error "wrong type rejected"
    {|declare function local:i($x as xs:integer) { $x };
      local:i("not a number")|} ();
  expect_error "return type checked"
    {|declare function local:bad() as xs:integer { "str" };
      local:bad()|} ()

let test_xrpc_helpers () =
  check string_ "host/path helpers" "xrpc://h:99 a/b.xml"
    (run {|(xrpc:host("xrpc://h:99/a/b.xml"), xrpc:path("xrpc://h:99/a/b.xml"))|})

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* range/aggregation consistency: sum(1 to n) = n(n+1)/2 *)
let prop_sum_range =
  QCheck.Test.make ~name:"sum(1 to n)" ~count:50
    (QCheck.int_range 0 200)
    (fun n ->
      run (Printf.sprintf "sum(1 to %d)" n) = string_of_int (n * (n + 1) / 2))

(* filter/where equivalence *)
let prop_filter_where_equiv =
  QCheck.Test.make ~name:"predicate vs where" ~count:50
    (QCheck.int_range 1 60)
    (fun n ->
      run (Printf.sprintf "(1 to %d)[. mod 2 = 0]" n)
      = run (Printf.sprintf "for $x in 1 to %d where $x mod 2 = 0 return $x" n))

(* reverse . reverse = id over integer sequences *)
let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse involution" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 10) (QCheck.int_range 0 99))
    (fun xs ->
      let seq =
        "(" ^ String.concat "," (List.map string_of_int xs) ^ ")"
      in
      run (Printf.sprintf "reverse(reverse(%s))" seq) = run seq)

(* parser round-trip through evaluation determinism *)
let prop_eval_deterministic =
  QCheck.Test.make ~name:"evaluation deterministic" ~count:20
    (QCheck.oneofl
       [ "for $x in 1 to 9 return $x * $x";
         {|doc("filmDB.xml")//name/string(.)|};
         "<a>{5,6}</a>" ])
    (fun q -> run q = run q)

let () =
  Alcotest.run "xquery"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "qnames and axes" `Quick test_lexer_qnames_axes;
          Alcotest.test_case "comments and strings" `Quick
            test_lexer_comments_strings;
        ] );
      ( "parser",
        [
          Alcotest.test_case "execute at" `Quick test_parse_execute_at;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "keyword element names" `Quick
            test_parse_reserved_names_as_steps;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
        ] );
      ( "expressions",
        List.map
          (fun (name, q, exp) -> Alcotest.test_case name `Quick (expect name q exp))
          basic_cases );
      ( "paths",
        List.map
          (fun (name, q, exp) -> Alcotest.test_case name `Quick (expect name q exp))
          path_cases );
      ( "constructors",
        List.map
          (fun (name, q, exp) -> Alcotest.test_case name `Quick (expect name q exp))
          constructor_cases );
      ( "functions",
        [
          Alcotest.test_case "user function" `Quick test_user_function;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "module import" `Quick test_module_import;
          Alcotest.test_case "global variable" `Quick test_global_variable;
          Alcotest.test_case "declare option" `Quick test_declare_option;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
          Alcotest.test_case "undefined variable" `Quick test_undefined_variable;
          Alcotest.test_case "updating flag" `Quick test_updating_flag_parsed;
          Alcotest.test_case "updating detection" `Quick test_is_updating_detection;
          Alcotest.test_case "xrpc helpers" `Quick test_xrpc_helpers;
          Alcotest.test_case "function conversion rules" `Quick
            test_function_conversion_rules;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sum_range;
            prop_filter_where_equiv;
            prop_reverse_involution;
            prop_eval_deterministic;
          ] );
    ]
