bin/xrpc_server.mli:
