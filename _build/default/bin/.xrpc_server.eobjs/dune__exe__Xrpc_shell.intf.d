bin/xrpc_shell.mli:
