bin/xrpc_shell.ml: Arg Array Buffer Cmd Cmdliner Filename Fun In_channel Logs Option Printf String Sys Term Unix Xrpc_net Xrpc_peer Xrpc_xml Xrpc_xquery
