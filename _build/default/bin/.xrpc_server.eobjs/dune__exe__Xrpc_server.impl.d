bin/xrpc_server.ml: Arg Array Cmd Cmdliner Filename Fun Logs Option Printf Sys Term Unix Xrpc_net Xrpc_peer Xrpc_workloads Xrpc_xquery
