(* xrpc-shell: run distributed XQuery queries from the command line.

   Reads a query from a file argument (or stdin), runs it against a local
   peer whose database is populated from --data, with `execute at` and
   `doc("xrpc://host:port/...")` going out over real HTTP.  With no query
   it drops into a small REPL (queries terminated by a line with a single
   "." or by EOF). *)

module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_data peer dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Filename.check_suffix entry ".xml" then
        Database.add_doc_xml peer.Peer.db entry (read_file path)
      else if Filename.check_suffix entry ".xq" then
        let source = read_file path in
        let prog = Xrpc_xquery.Parser.parse_prog source in
        match prog.Xrpc_xquery.Ast.module_decl with
        | Some (_, uri) -> Peer.register_module peer ~uri ~location:entry source
        | None -> ())
    (Sys.readdir dir)

let run_query peer source =
  match Peer.query peer source with
  | { Peer.value; committed; participants; _ } ->
      print_endline (Xrpc_xml.Xdm.to_display value);
      if participants <> [] then
        Printf.printf "-- participants: %s%s\n"
          (String.concat ", " participants)
          (if committed then "" else " (COMMIT FAILED)")
  | exception
      ( Xrpc_xquery.Parser.Syntax_error m
      | Xrpc_xquery.Lexer.Lex_error m
      | Xrpc_xquery.Eval.Error m
      | Xrpc_xml.Xdm.Dynamic_error m
      | Peer.Peer_error m ) ->
      Printf.eprintf "error: %s\n%!" m

let repl peer =
  print_endline "XRPC shell — terminate a query with a single '.' line; ctrl-d exits.";
  let buf = Buffer.create 256 in
  let rec loop () =
    (match Buffer.length buf with 0 -> print_string "xquery> " | _ -> print_string "      > ");
    print_string "";
    flush stdout;
    match input_line stdin with
    | "." ->
        if Buffer.length buf > 0 then run_query peer (Buffer.contents buf);
        Buffer.clear buf;
        loop ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop ()
    | exception End_of_file ->
        if Buffer.length buf > 0 then run_query peer (Buffer.contents buf)
  in
  loop ()

let main verbose data query_file =
  setup_logs verbose;
  let peer = Peer.create "xrpc://shell.local" in
  Peer.set_transport peer (Xrpc_net.Http.transport ());
  Option.iter (load_data peer) data;
  match query_file with
  | Some path -> run_query peer (read_file path)
  | None -> if Unix.isatty Unix.stdin then repl peer
            else run_query peer (In_channel.input_all stdin)

open Cmdliner

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log requests and 2PC activity.")

let data =
  Arg.(
    value
    & opt (some dir) None
    & info [ "d"; "data" ] ~docv:"DIR"
        ~doc:"Directory of *.xml documents and *.xq modules for the local peer.")

let query_file =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"QUERY.xq" ~doc:"Query file to run (stdin if omitted).")

let cmd =
  let doc = "run (distributed) XQuery queries with XRPC" in
  Cmd.v (Cmd.info "xrpc-shell" ~doc) Term.(const main $ verbose $ data $ query_file)

let () = exit (Cmd.eval cmd)
