(* xrpc-shell: run distributed XQuery queries from the command line.

   Reads a query from a file argument (or stdin), runs it against a local
   peer whose database is populated from --data, with `execute at` and
   `doc("xrpc://host:port/...")` going out over real HTTP.  With no query
   it drops into a small REPL (queries terminated by a line with a single
   "." or by EOF). *)

module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Metrics = Xrpc_obs.Metrics
module Window = Xrpc_obs.Window
module Slo = Xrpc_obs.Slo
module Telemetry = Xrpc_obs.Telemetry
module Trace = Xrpc_obs.Trace
module Profile = Xrpc_obs.Profile
module Flight_recorder = Xrpc_obs.Flight_recorder
module Looplift = Xrpc_algebra.Looplift
module Runner = Xrpc_xquery.Runner
module Cost = Xrpc_core.Cost
module Strategies = Xrpc_core.Strategies

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_data peer dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Filename.check_suffix entry ".xml" then
        Database.add_doc_xml peer.Peer.db entry (read_file path)
      else if Filename.check_suffix entry ".xq" then
        let source = read_file path in
        let prog = Xrpc_xquery.Parser.parse_prog source in
        match prog.Xrpc_xquery.Ast.module_decl with
        | Some (_, uri) -> Peer.register_module peer ~uri ~location:entry source
        | None -> ())
    (Sys.readdir dir)

(* After a traced query: the span tree, then a paper-style per-phase cost
   table (§5 of the XRPC paper breaks query time down the same way). *)
let print_trace () =
  print_string (Trace.render ());
  let phases = Trace.phase_summary () in
  if phases <> [] then begin
    print_endline "-- per-phase cost:";
    List.iter
      (fun (name, count, total_ms) ->
        Printf.printf "   %-18s %4dx  %8.3f ms\n" name count total_ms)
      phases
  end;
  Trace.reset ()

let run_query peer source =
  (match Peer.query peer source with
  | { Peer.value; committed; participants; _ } ->
      print_endline (Xrpc_xml.Xdm.to_display value);
      if participants <> [] then
        Printf.printf "-- participants: %s%s\n"
          (String.concat ", " participants)
          (if committed then "" else " (COMMIT FAILED)")
  | exception
      ( Xrpc_xquery.Parser.Syntax_error m
      | Xrpc_xquery.Lexer.Lex_error m
      | Xrpc_xquery.Eval.Error m
      | Xrpc_xml.Xdm.Dynamic_error m
      | Peer.Peer_error m ) ->
      Printf.eprintf "error: %s\n%!" m);
  if Trace.enabled () then print_trace ()

(* Table-2 annotation on [execute at] plan nodes: what the bulk message
   saves over one-at-a-time RPC for a nominal 100-iteration loop. *)
let () =
  Looplift.execute_note_hook :=
    Some
      (fun ~dest ~fn ~nargs ->
        let ncalls = 100 in
        let bulk, singles =
          Cost.estimate_rpc Cost.default_net ~ncalls ~bytes_per_call:128 ()
        in
        [
          Printf.sprintf
            "table2 %s/%d%s: @%d iters bulk=%.3fms one-at-a-time=%.3fms \
             (%.1fx)"
            (Xrpc_xml.Qname.to_string fn)
            nargs
            (match dest with Some d -> " -> " ^ d | None -> "")
            ncalls bulk singles
            (if bulk > 0. then singles /. bulk else 1.);
        ])

(* After the operator tree: the cost optimizer's view of each [execute at]
   site — chosen §5 strategy plus the rejected alternatives with their
   estimated costs (default site statistics unless a profiled run has
   calibrated the feedback EMA). *)
let print_optimizer_section prog =
  match Runner.execute_sites prog with
  | [] -> ()
  | sites ->
      print_endline "-- optimizer (Tables 2-4 cost model):";
      List.iteri
        (fun i (s : Runner.execute_site) ->
          Printf.printf "   site %d: %s/%d%s%s%s\n" (i + 1)
            (Xrpc_xml.Qname.to_string s.Runner.site_fn)
            s.Runner.site_arity
            (match s.Runner.site_dest with
            | Some d -> " at " ^ d
            | None -> " at <dynamic>")
            (if s.Runner.site_in_loop then " [in loop]" else "")
            (if s.Runner.site_loop_dependent then " [loop-dependent]" else "");
          let decision =
            Cost.choose ?force:(Cost.force_of_env ()) Cost.default_net
              Cost.zero_cpu
              { Cost.default_site with Cost.outer_rows = 100 }
          in
          print_string
            (String.concat ""
               (List.map
                  (fun line -> "   " ^ line ^ "\n")
                  (String.split_on_char '\n'
                     (String.trim (Cost.explain_decision decision))))))
        sites

(* EXPLAIN: the static operator tree (Looplift's plan-node numbering,
   annotated with the Table-1 algebra), no execution.  Goes through the
   peer's plan cache — an explain-then-run pair compiles once. *)
let explain_query peer source =
  match Peer.compiled_plan peer source with
  | compiled -> (
      let prog = compiled.Xrpc_peer.Plan_cache.prog in
      match prog.Xrpc_xquery.Ast.body with
      | Some e ->
          print_string (Looplift.explain e);
          print_optimizer_section prog
      | None -> print_endline "(library module — no query body to explain)")
  | exception
      (Xrpc_xquery.Parser.Syntax_error m | Xrpc_xquery.Lexer.Lex_error m) ->
      Printf.eprintf "error: %s\n%!" m

let profile_label source =
  let s =
    String.trim
      (String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) source)
  in
  if String.length s > 120 then String.sub s 0 117 ^ "..." else s

(* PROFILE: run the query with the profiler on and print the annotated
   operator tree (per-node cardinalities/times, per-operator row counts,
   per-destination traffic with the remote phase breakdown). *)
let profile_query peer source =
  let (), prof =
    Profile.profiled ~label:(profile_label source) (fun () ->
        run_query peer source)
  in
  print_string (Profile.render prof)

(* REPL meta-commands, ':'-prefixed like most database shells. *)
let command peer line =
  let line = String.trim line in
  let word, rest =
    match String.index_opt line ' ' with
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
    | None -> (line, "")
  in
  match (word, rest) with
  | ":trace", "on" ->
      Trace.set_enabled true;
      print_endline "tracing on";
      true
  | ":trace", "off" ->
      Trace.set_enabled false;
      Trace.reset ();
      print_endline "tracing off";
      true
  | ":metrics", "" ->
      print_string (Window.export_text ());
      true
  | ":metrics", "reset" ->
      Metrics.reset ();
      Window.reset ();
      print_endline "metrics reset";
      true
  | ":health", "" ->
      print_string (Slo.healthz_text ~scope:peer.Peer.uri ());
      true
  | ":cluster", "" ->
      print_endline "usage: :cluster <http://host:port> [more peers ...]";
      true
  | ":cluster", uris ->
      (* scrape each named peer's built-in telemetry function over HTTP
         and print the merged federation view *)
      let peers = String.split_on_char ' ' uris in
      let now = Trace.now_ms () in
      let scrape dest =
        try
          let body =
            Xrpc_core.Xrpc_client.call
              (Xrpc_core.Xrpc_client.connect_http ~origin:peer.Peer.uri ())
              ~dest ~module_uri:Xrpc_xml.Qname.ns_xrpc ~fn:"telemetry" []
          in
          Telemetry.of_wire
            (Xrpc_xml.Xdm.string_value
               (Xrpc_xml.Xdm.one_item ~what:"telemetry" body))
        with e ->
          Telemetry.unreachable ~peer:dest ~at_ms:now
            ~reason:(Printexc.to_string e)
      in
      print_string
        (Telemetry.cluster_text
           (Telemetry.merge ~at_ms:now (List.map scrape peers)));
      true
  | ":flight", "" ->
      print_string (Flight_recorder.to_text ());
      true
  | ":flight", "slow" ->
      print_string (Flight_recorder.pinned_text ());
      true
  | ":explain", "" ->
      print_endline "usage: :explain <one-line query>";
      true
  | ":explain", q ->
      explain_query peer q;
      true
  | ":optimizer", "" ->
      print_string (Cost.calibration_text ());
      (match Cost.force_of_env () with
      | Some s ->
          Printf.printf "forced by XRPC_FORCE_STRATEGY: %s\n"
            (Strategies.name s)
      | None -> ());
      true
  | ":optimizer", "replay" ->
      let n = Cost.replay_flight () in
      Printf.printf "replayed %d optimizer run%s from the flight recorder\n" n
        (if n = 1 then "" else "s");
      true
  | ":optimizer", "reset" ->
      Cost.reset_calibration ();
      print_endline "optimizer calibration reset";
      true
  | ":optimizer", _ ->
      print_endline "usage: :optimizer [replay|reset]";
      true
  | ":shards", "" ->
      print_string (Peer.shard_text peer);
      true
  | ":shards", keys ->
      (* :shards k1 k2 … — placement + load ratio for those keys *)
      print_string
        (Peer.shard_text ~keys:(String.split_on_char ' ' keys) peer);
      true
  | ":profile", "" ->
      print_endline "usage: :profile <one-line query>";
      true
  | ":profile", q ->
      profile_query peer q;
      true
  | ":cache", ("" | "stats") ->
      print_endline (Peer.cache_stats_text peer);
      true
  | ":cache", "clear" ->
      Peer.clear_caches peer;
      print_endline "caches cleared (plan, result, module plans)";
      true
  | ":cache", "on" ->
      Peer.set_plan_caching peer true;
      Peer.set_result_caching peer true;
      print_endline "plan + result caching on";
      true
  | ":cache", "off" ->
      Peer.set_plan_caching peer false;
      Peer.set_result_caching peer false;
      print_endline "plan + result caching off";
      true
  | ":cache", _ ->
      print_endline "usage: :cache [stats|clear|on|off]";
      true
  | ":help", _ ->
      print_endline
        ":explain <q>   — operator tree + per-site strategy costs (no \
         execution; cached plan)";
      print_endline
        ":optimizer     — cost-model calibration (measured/estimated EMA)";
      print_endline
        ":optimizer replay|reset — rebuild the EMA from the flight \
         recorder / zero it";
      print_endline
        ":profile <q>   — run with the profiler: per-operator rows/times,";
      print_endline
        "                 per-destination bytes and remote phase costs";
      print_endline ":trace on|off  — print a span tree after each query";
      print_endline
        ":metrics       — dump the metrics registry + windowed series";
      print_endline ":metrics reset — zero every counter and histogram";
      print_endline
        ":health        — this peer's SLO state (budgets, burn, p99s)";
      print_endline
        ":cluster <uris> — scrape peers' telemetry, print the merged view";
      print_endline
        ":flight        — recent requests from the flight recorder";
      print_endline ":flight slow   — pinned slow queries";
      print_endline
        ":shards [keys] — shard map: members, replication, key placement";
      print_endline
        ":cache [stats] — plan/result/module/idem cache counters";
      print_endline ":cache clear   — drop the performance caches";
      print_endline
        ":cache on|off  — toggle plan + result caching (cache=off calls)";
      true
  | cmd, _ when String.length cmd > 0 && cmd.[0] = ':' ->
      Printf.eprintf "unknown command %s (try :help)\n%!" cmd;
      true
  | _ -> false

let repl peer =
  print_endline
    "XRPC shell — terminate a query with a single '.' line; ctrl-d exits.\n\
     Meta-commands: :explain <q>, :profile <q>, :trace on|off, :metrics \
     [reset], :health, :cluster <uris>, :flight [slow], :shards [keys], \
     :cache [stats|clear|on|off], :help.";
  let buf = Buffer.create 256 in
  let rec loop () =
    (match Buffer.length buf with 0 -> print_string "xquery> " | _ -> print_string "      > ");
    print_string "";
    flush stdout;
    match input_line stdin with
    | "." ->
        if Buffer.length buf > 0 then run_query peer (Buffer.contents buf);
        Buffer.clear buf;
        loop ()
    | line when Buffer.length buf = 0 && command peer line -> loop ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop ()
    | exception End_of_file ->
        if Buffer.length buf > 0 then run_query peer (Buffer.contents buf)
  in
  loop ()

let main verbose data trace query_file =
  setup_logs verbose;
  if trace then Trace.set_enabled true;
  (* the peer URI seeds outgoing idempotency keys (origin/seq); a fixed
     name would make every shell process stamp the same keys, so a second
     process's first call could be answered from a server's idem cache
     with the FIRST process's response *)
  let peer = Peer.create (Printf.sprintf "xrpc://shell-%d.local" (Unix.getpid ())) in
  Peer.set_transport peer (Xrpc_net.Http.transport ());
  Option.iter (load_data peer) data;
  match query_file with
  | Some path -> run_query peer (read_file path)
  | None -> if Unix.isatty Unix.stdin then repl peer
            else run_query peer (In_channel.input_all stdin)

open Cmdliner

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log requests and 2PC activity.")

let data =
  Arg.(
    value
    & opt (some dir) None
    & info [ "d"; "data" ] ~docv:"DIR"
        ~doc:"Directory of *.xml documents and *.xq modules for the local peer.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print a span tree with per-phase timings after each query.")

let query_file =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"QUERY.xq" ~doc:"Query file to run (stdin if omitted).")

let cmd =
  let doc = "run (distributed) XQuery queries with XRPC" in
  Cmd.v
    (Cmd.info "xrpc-shell" ~doc)
    Term.(const main $ verbose $ data $ trace $ query_file)

let () = exit (Cmd.eval cmd)
