(* xrpc-server: serve a directory of XML documents and XQuery modules as an
   XRPC peer over HTTP.

   Every *.xml file in the data directory becomes a queryable document
   (by file name); every *.xq file is registered as a module under both
   its declared namespace URI and its file name as at-hint.  The server
   answers SOAP XRPC requests (including Bulk RPC, queryID isolation and
   2PC transaction messages) on POST. *)

module Peer = Xrpc_peer.Peer
module Database = Xrpc_peer.Database
module Http = Xrpc_net.Http
module Executor = Xrpc_net.Executor
module Client = Xrpc_core.Xrpc_client
module Metrics = Xrpc_obs.Metrics
module Trace = Xrpc_obs.Trace
module Flight_recorder = Xrpc_obs.Flight_recorder
module Export = Xrpc_obs.Export

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_data peer dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        if Filename.check_suffix entry ".xml" then begin
          Database.add_doc_xml peer.Peer.db entry (read_file path);
          Printf.printf "loaded document %s\n%!" entry
        end
        else if Filename.check_suffix entry ".xq" then begin
          let source = read_file path in
          let prog = Xrpc_xquery.Parser.parse_prog source in
          match prog.Xrpc_xquery.Ast.module_decl with
          | Some (_, uri) ->
              Peer.register_module peer ~uri ~location:entry source;
              Printf.printf "loaded module %s (namespace %s)\n%!" entry uri
          | None ->
              Printf.eprintf "skipping %s: not a library module\n%!" entry
        end)
      (Sys.readdir dir)
  else Printf.eprintf "warning: data directory %s not found\n%!" dir

(* /tracez?id=N — split the raw path into route and query string *)
let split_path path =
  match String.index_opt path '?' with
  | Some i ->
      ( String.sub path 0 i,
        String.sub path (i + 1) (String.length path - i - 1) )
  | None -> (path, "")

let query_param query key =
  List.find_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i when String.sub kv 0 i = key ->
          Some (String.sub kv (i + 1) (String.length kv - i - 1))
      | _ -> None)
    (String.split_on_char '&' query)

let serve verbose port data demo trace slow_ms =
  setup_logs verbose;
  Flight_recorder.configure ~slow:slow_ms ();
  if trace then begin
    (* span ids get a per-process tag so traces stitched across several
       server processes cannot collide *)
    Trace.set_process_tag (Printf.sprintf "p%d-" port);
    Trace.set_enabled true
  end;
  let peer = Peer.create (Printf.sprintf "xrpc://127.0.0.1:%d" port) in
  (* outgoing calls of hosted functions also travel over HTTP, through the
     client façade: pooled keep-alive connections, parallel fan-out *)
  let client =
    Client.connect_http
      ~config:(Client.config ~executor:Executor.unbounded ~keep_alive:true ())
      ~origin:(Printf.sprintf "xrpc://127.0.0.1:%d" port)
      ()
  in
  Peer.set_transport peer (Client.transport client);
  Peer.set_executor peer (Client.executor client);
  if demo then begin
    Xrpc_workloads.Filmdb.install peer ();
    print_endline "demo film database + films module loaded"
  end;
  Option.iter (load_data peer) data;
  let handler ~path body =
    let route, query = split_path path in
    match route with
    | "/metrics" -> Metrics.to_text ()
    | "/metrics.json" -> Metrics.to_json ()
    | "/requestz" -> Flight_recorder.to_text ()
    | "/requestz.json" -> Flight_recorder.to_json ()
    | "/slowz" -> Flight_recorder.pinned_text ()
    | "/cachez" -> Peer.cache_stats_text peer
    | "/cachez.json" ->
        let s = Peer.cache_stats peer in
        let p = s.Peer.plan and r = s.Peer.result in
        Printf.sprintf
          {|{"plan_cache":{"hits":%d,"misses":%d,"evictions":%d,"size":%d,"capacity":%d,"enabled":%b},"result_cache":{"hits":%d,"misses":%d,"stale":%d,"invalidations":%d,"evictions":%d,"size":%d,"capacity":%d,"enabled":%b},"func_cache":{"hits":%d,"misses":%d,"evictions":%d,"size":%d},"idem_cache":{"hits":%d,"misses":%d,"evictions":%d,"size":%d}}|}
          p.Xrpc_peer.Plan_cache.hits p.Xrpc_peer.Plan_cache.misses
          p.Xrpc_peer.Plan_cache.evictions p.Xrpc_peer.Plan_cache.size
          p.Xrpc_peer.Plan_cache.capacity p.Xrpc_peer.Plan_cache.enabled
          r.Xrpc_peer.Result_cache.hits r.Xrpc_peer.Result_cache.misses
          r.Xrpc_peer.Result_cache.stale
          r.Xrpc_peer.Result_cache.invalidations
          r.Xrpc_peer.Result_cache.evictions r.Xrpc_peer.Result_cache.size
          r.Xrpc_peer.Result_cache.capacity r.Xrpc_peer.Result_cache.enabled
          s.Peer.func_hits s.Peer.func_misses s.Peer.func_evictions
          s.Peer.func_size s.Peer.idem_hits s.Peer.idem_misses
          s.Peer.idem_evictions s.Peer.idem_size
    | "/shardz" ->
        (* shard map: members, replication factor, vnodes; ?keys=a,b,c
           additionally shows those keys' primary placement + load ratio *)
        let keys =
          match query_param query "keys" with
          | Some ks -> String.split_on_char ',' ks
          | None -> []
        in
        Peer.shard_text ~keys peer
    | "/shardz.json" ->
        let keys =
          match query_param query "keys" with
          | Some ks -> String.split_on_char ',' ks
          | None -> []
        in
        Peer.shard_json ~keys peer
    | "/optimizerz" ->
        (* cost-model calibration state (measured/estimated EMA per §5
           strategy) plus any active force override *)
        Xrpc_core.Cost.calibration_text ()
        ^ (match Xrpc_core.Cost.force_of_env () with
          | Some s ->
              "forced by XRPC_FORCE_STRATEGY: " ^ Xrpc_core.Strategies.name s
              ^ "\n"
          | None -> "")
    | "/tracez" -> (
        (* span trees are captured per request when --trace is on *)
        match Option.map int_of_string_opt (query_param query "id") with
        | Some (Some id) -> (
            match Flight_recorder.find id with
            | Some e ->
                if query_param query "format" = Some "tree" then
                  Export.span_tree_json e.Flight_recorder.spans
                else Export.chrome_trace e.Flight_recorder.spans
            | None -> Printf.sprintf "no request #%d in the flight recorder" id)
        | _ ->
            "usage: /tracez?id=N (ids listed at /requestz; &format=tree for \
             the nested-span JSON instead of Chrome trace events)")
    | _ ->
        let out = Peer.handle_raw peer body in
        if trace then begin
          Logs.app (fun m -> m "trace:@.%s" (Trace.render ()));
          Trace.reset ()
        end;
        out
  in
  let server = Http.serve ~port handler in
  Printf.printf "XRPC peer listening on xrpc://127.0.0.1:%d\n%!" server.Http.port;
  Printf.printf "metrics at http://127.0.0.1:%d/metrics (and /metrics.json)\n%!"
    server.Http.port;
  Printf.printf
    "flight recorder at /requestz (.json), slow queries at /slowz, cache \
     stats at /cachez (.json), optimizer calibration at /optimizerz, shard \
     map at /shardz (.json, ?keys=a,b), traces at /tracez?id=N%s\n%!"
    (if trace then "" else " (span trees need --trace)");
  (* keep the main thread alive *)
  while true do
    Unix.sleep 3600
  done

open Cmdliner

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log requests and 2PC activity.")

let port =
  Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port.")

let data =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "data" ] ~docv:"DIR"
        ~doc:"Directory of *.xml documents and *.xq modules to serve.")

let demo =
  Arg.(value & flag & info [ "demo" ] ~doc:"Load the paper's film database.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Enable distributed tracing; log a span tree after every request.")

let slow_ms =
  Arg.(
    value
    & opt float 250.
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Requests at least this slow are pinned by the flight recorder \
           (served at /slowz).")

let cmd =
  let doc = "serve XML documents and XQuery modules as an XRPC peer" in
  Cmd.v
    (Cmd.info "xrpc-server" ~doc)
    Term.(const serve $ verbose $ port $ data $ demo $ trace $ slow_ms)

let () = exit (Cmd.eval cmd)
