(* xrpc-server: serve a directory of XML documents and XQuery modules as an
   XRPC peer over HTTP.

   Flag parsing only — everything else (event-loop server core, route
   table, data loading, outgoing-client wiring) lives behind the
   Xrpc_core.Xrpc_server façade, so embedders get exactly the server this
   binary runs. *)

module Peer = Xrpc_peer.Peer
module Server = Xrpc_core.Xrpc_server

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let serve verbose port data demo trace slow_ms threads max_connections workers
    backlog peers =
  setup_logs verbose;
  let cluster_peers =
    match peers with
    | None -> []
    | Some s ->
        List.filter (fun u -> u <> "") (String.split_on_char ',' s)
  in
  let peer = Peer.create (Printf.sprintf "xrpc://127.0.0.1:%d" port) in
  let server =
    Server.create
      ~config:
        (Server.config ~port ~backlog ?max_connections ~workers
           ~thread_per_conn:threads ~slow_ms ~trace ~cluster_peers ())
      peer
  in
  if demo then begin
    Xrpc_workloads.Filmdb.install peer ();
    print_endline "demo film database + films module loaded"
  end;
  Option.iter
    (fun dir ->
      let docs, mods = Server.load_directory server dir in
      Printf.printf "loaded %d documents, %d modules from %s\n%!" docs mods dir)
    data;
  let port = Server.start server in
  Printf.printf "XRPC peer listening on xrpc://127.0.0.1:%d (%s core)\n%!" port
    (if threads then "thread-per-connection" else "event-loop");
  Printf.printf "routes on http://127.0.0.1:%d :\n%!" port;
  List.iter
    (fun (path, doc) -> Printf.printf "  %-16s %s\n%!" path doc)
    (Server.routes server);
  if not trace then
    print_endline "(span trees at /tracez need --trace)";
  (* keep the main thread alive *)
  while true do
    Unix.sleep 3600
  done

open Cmdliner

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log requests and 2PC activity.")

let port =
  Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port.")

let data =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "data" ] ~docv:"DIR"
        ~doc:"Directory of *.xml documents and *.xq modules to serve.")

let demo =
  Arg.(value & flag & info [ "demo" ] ~doc:"Load the paper's film database.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Enable distributed tracing; log a span tree after every request.")

let slow_ms =
  Arg.(
    value
    & opt float 250.
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Requests at least this slow are pinned by the flight recorder \
           (served at /slowz).")

let threads =
  Arg.(
    value & flag
    & info [ "threads" ]
        ~doc:
          "Use the thread-per-connection baseline server core instead of \
           the event loop (for comparison benchmarks).")

let max_connections =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-connections" ] ~docv:"N"
        ~doc:
          "Reject connections beyond $(docv) open ones with an immediate \
           503 (default: unlimited).")

let workers =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Query-execution worker threads behind the event loop (ignored \
           with $(b,--threads)).")

let backlog =
  Arg.(
    value & opt int 128
    & info [ "backlog" ] ~docv:"N" ~doc:"Listen-socket backlog.")

let peers =
  Arg.(
    value
    & opt (some string) None
    & info [ "peers" ] ~docv:"URIS"
        ~doc:
          "Comma-separated federation peers (http://host:port) whose \
           telemetry /clusterz aggregates.")

let cmd =
  let doc = "serve XML documents and XQuery modules as an XRPC peer" in
  Cmd.v
    (Cmd.info "xrpc-server" ~doc)
    Term.(
      const serve $ verbose $ port $ data $ demo $ trace $ slow_ms $ threads
      $ max_connections $ workers $ backlog $ peers)

let () = exit (Cmd.eval cmd)
